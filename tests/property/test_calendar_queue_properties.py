"""Property tests: the calendar-queue engine vs a reference heap.

The calendar queue in :mod:`repro.sim.engine` must be observationally
identical to a plain ``(time, seq)`` min-heap with lazy deletion: same
firing order (including equal-time ties broken by schedule order), same
cancel semantics (cancel-then-fire never fires, fire-then-cancel is a
no-op), and the same sequence across lazy compaction, partial drains,
horizon drains, and a snapshot/restore mid-sequence.

Each drawn program interleaves every insert arity the engine codes for
(``schedule``/``schedule_at`` generic entries, zero/one/two-argument
``post`` fast paths), cancels, and budgeted/horizon drains, then checks
the fired-label sequence against the reference model.
"""

from functools import partial
from heapq import heappop, heappush
from itertools import count

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.engine import _COMPACT_MIN, EventDigest

# Callbacks must be picklable for the snapshot/restore tests, so fired
# labels land in a module-level registry keyed by a per-run token instead
# of a closure.
_RECORDERS: dict[int, list[int]] = {}
_TOKENS = count()


def _record(token: int, label: int) -> None:
    _RECORDERS[token].append(label)


# Delays on a coarse grid across four scales: equal-time ties are common
# (exercising seq tie-breaks) and large delays spill far past the active
# bucket (exercising the bucket-index heap and far-overflow path).
DELAYS = st.builds(
    lambda n, scale: n * scale,
    st.integers(min_value=0, max_value=12),
    st.sampled_from((1e-6, 1e-5, 1e-3, 0.5)),
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), DELAYS),  # len-6 generic entry
        st.tuples(st.just("schedule_at"), DELAYS),  # len-6 generic entry
        st.tuples(st.just("post"), DELAYS),  # len-3 zero-arg entry
        st.tuples(st.just("post1"), DELAYS),  # len-4 one-arg entry
        st.tuples(st.just("post2"), DELAYS),  # len-5 two-arg entry
        st.tuples(st.just("cancel"), st.integers(0, 255)),
        st.tuples(st.just("drain"), st.integers(0, 8)),
        st.tuples(st.just("drain_until"), DELAYS),
    ),
    max_size=120,
)


def run_program(ops, snapshot_at=None):
    """Drive the engine and the reference heap through ``ops`` in lockstep.

    Returns the fired label sequence (already asserted identical between
    the two).  With ``snapshot_at`` the simulator is pickled and restored
    before that step; outstanding handles then refer to the discarded
    pre-snapshot object graph, so they are dropped from both sides (a
    cancel through a stale handle must not affect the restored run).
    """
    token = next(_TOKENS)
    _RECORDERS[token] = fired = []
    try:
        sim = Simulator()
        heap: list[tuple[float, int, int]] = []
        cancelled: set[int] = set()
        expected: list[int] = []
        handles: list = []  # (EventHandle, seq)
        model_now = 0.0
        seq = 0

        def model_pop() -> tuple[float, int, int] | None:
            while heap:
                time_, s, lbl = heappop(heap)
                if s not in cancelled:
                    return time_, s, lbl
            return None

        for step, (kind, arg) in enumerate(ops):
            if snapshot_at is not None and step == snapshot_at:
                sim = Simulator.restore(sim.snapshot())
                handles.clear()
            if kind == "cancel":
                if handles:
                    handle, s = handles.pop(arg % len(handles))
                    handle.cancel()
                    cancelled.add(s)  # no-op if already popped (fired)
            elif kind == "drain":
                n = sim.run(max_events=arg)
                popped = 0
                while popped < arg:
                    hit = model_pop()
                    if hit is None:
                        break
                    model_now = hit[0]
                    expected.append(hit[2])
                    popped += 1
                assert n == popped
            elif kind == "drain_until":
                horizon = model_now + arg
                n = sim.run(until=sim.now + arg)
                popped = 0
                while heap:
                    hit = model_pop()
                    if hit is None:
                        break
                    if hit[0] > horizon:
                        heappush(heap, hit)  # beyond horizon: push back
                        break
                    expected.append(hit[2])
                    popped += 1
                model_now = horizon
                assert n == popped
                assert sim.now == model_now
            else:
                label = seq
                if kind == "schedule":
                    handles.append(
                        (sim.schedule(arg, _record, token, label), seq)
                    )
                elif kind == "schedule_at":
                    handles.append(
                        (sim.schedule_at(sim.now + arg, _record, token, label),
                         seq)
                    )
                elif kind == "post":
                    sim.post(arg, partial(_record, token, label))
                elif kind == "post1":
                    sim.post1(arg, partial(_record, token), label)
                else:  # post2
                    sim.post2(arg, _record, token, label)
                heappush(heap, (model_now + arg, seq, label))
                seq += 1
            assert fired == expected

        sim.run()  # drain to empty through the fast loop
        while True:
            hit = model_pop()
            if hit is None:
                break
            model_now = hit[0]
            expected.append(hit[2])
        assert fired == expected
        assert sim.pending == 0
        return fired
    finally:
        del _RECORDERS[token]


class TestCalendarQueueVsReferenceHeap:
    @given(OPS)
    def test_matches_reference_heap(self, ops):
        run_program(ops)

    @given(OPS, st.data())
    @settings(deadline=None)  # pickling makes individual examples slow
    def test_snapshot_restore_mid_sequence_is_transparent(self, ops, data):
        """Restoring a snapshot mid-program must not perturb the order."""
        snapshot_at = data.draw(
            st.integers(min_value=0, max_value=max(len(ops), 1))
        )
        # run_program asserts engine-vs-heap equality internally; the
        # snapshot run must also match an uninterrupted run op-for-op,
        # modulo cancels through handles invalidated by the restore.
        run_program(ops, snapshot_at=snapshot_at)

    @given(st.data())
    def test_mass_cancellation_compacts_without_reordering(self, data):
        """Cancel most of a large queue: compaction must drop exactly the
        tombstones and keep the survivors' (time, seq) order."""
        n = data.draw(st.integers(min_value=_COMPACT_MIN * 2, max_value=256))
        delays = data.draw(
            st.lists(DELAYS, min_size=n, max_size=n)
        )
        doomed = data.draw(
            st.sets(st.integers(0, n - 1), min_size=(3 * n) // 4)
        )
        sim = Simulator()
        fired: list[int] = []
        handles = [
            sim.schedule(d, fired.append, i) for i, d in enumerate(delays)
        ]
        for i in doomed:
            handles[i].cancel()
        # More dead than live in a >=2*_COMPACT_MIN queue: the lazy
        # compaction rebuild must have run already.
        assert sim._cancelled < len(doomed)
        sim.run()
        survivors = [i for i in range(n) if i not in doomed]
        assert fired == sorted(
            survivors, key=lambda i: (delays[i], i)
        )

    @given(st.integers(min_value=1, max_value=60))
    def test_equal_time_ties_fire_in_schedule_order(self, n):
        sim = Simulator()
        fired: list[int] = []
        for i in range(n):
            if i % 2:
                sim.post(1e-3, fired.append, i)
            else:
                sim.schedule(1e-3, fired.append, i)
        sim.run()
        assert fired == list(range(n))

    @given(OPS)
    @settings(deadline=None)
    def test_digest_chain_survives_snapshot_restore(self, ops):
        """A digest folded across snapshot/restore equals the digest of an
        uninterrupted run over the same program."""
        cut = len(ops) // 2

        token = next(_TOKENS)
        _RECORDERS[token] = []
        try:
            straight = Simulator()
            straight_digest = straight.attach_digest()
            _apply_inserts(straight, ops, token)
            straight.run()
        finally:
            del _RECORDERS[token]

        token = next(_TOKENS)
        _RECORDERS[token] = []
        try:
            sim = Simulator()
            digest = sim.attach_digest()
            _apply_inserts(sim, ops[:cut], token)
            sim = Simulator.restore(sim.snapshot())
            assert sim.event_digest is not None  # digest state is carried
            _apply_inserts(sim, ops[cut:], token)
            sim.run()
            assert sim.event_digest.hexdigest() == straight_digest.hexdigest()
            assert sim.event_digest.count == straight_digest.count
            del digest
        finally:
            del _RECORDERS[token]


def _apply_inserts(sim: Simulator, ops, token: int) -> None:
    """Replay only the insert ops of a program (digest-chain test helper)."""
    for kind, arg in ops:
        if kind in ("cancel", "drain", "drain_until"):
            continue
        if kind == "schedule":
            sim.schedule(arg, _record, token, 0)
        elif kind == "schedule_at":
            sim.schedule_at(sim.now + arg, _record, token, 0)
        elif kind == "post":
            sim.post(arg, partial(_record, token, 0))
        elif kind == "post1":
            sim.post1(arg, partial(_record, token), 0)
        else:
            sim.post2(arg, _record, token, 0)
