"""Property tests: incremental graft/prune is equivalent to re-peeling.

Two layers:

* pure tree surgery — after *any* join/leave sequence, the incrementally
  maintained trees deliver to exactly the membership a from-scratch
  re-peel of the surviving set would, and every tree stays a valid
  fabric-realizable arborescence;
* end-to-end — the same sequences applied to a live collective through the
  scenario churn path keep the exactly-once/conservation invariants (the
  checker runs in raise mode) and every surviving receiver finishes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec, run
from repro.collectives import Gpu, Group
from repro.control import ChurnEvent, ChurnSchedule, covered_hosts, graft_host, prune_host
from repro.core import Peel
from repro.sim import SimConfig
from repro.topology import LeafSpine
from repro.workloads import CollectiveJob

KB = 1024


def topo8() -> LeafSpine:
    return LeafSpine(2, 4, 2)


HOSTS = topo8().hosts  # 8 hosts, stable order


@st.composite
def churn_sequences(draw):
    """(source, initial receivers, [(op, host), ...]) with every join
    targeting a non-member and every leave a current member — mirroring the
    control plane, whose idempotence filter drops no-op churn anyway."""
    source = HOSTS[draw(st.integers(min_value=0, max_value=len(HOSTS) - 1))]
    pool = [h for h in HOSTS if h != source]
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    members = set(rng.sample(pool, draw(st.integers(min_value=1, max_value=4))))
    ops = []
    current = set(members)
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        candidates = sorted(set(pool) - current)
        if current and (not candidates or rng.random() < 0.5):
            if len(current) <= 1:
                continue  # keep at least one receiver alive
            host = rng.choice(sorted(current))
            current.discard(host)
            ops.append(("leave", host))
        elif candidates:
            host = rng.choice(candidates)
            current.add(host)
            ops.append(("join", host))
    return source, members, ops, current


def assert_valid_trees(topo, trees, source):
    for tree in trees:
        assert tree.root == source
        for child, par in tree.parent.items():
            assert topo.graph.has_edge(par, child)
        # Every node reaches the root: the parent map is a rooted tree.
        for node in tree.parent:
            assert tree.path_from_root(node)[0] == source


class TestTreeSurgeryEquivalence:
    @given(churn_sequences())
    @settings(max_examples=60, deadline=None)
    def test_incremental_delivery_set_matches_repeel(self, case):
        source, members, ops, final = case
        topo = topo8()
        planner = Peel(topo)
        trees = list(planner.plan(source, sorted(members)).static_trees)
        for op, host in ops:
            if op == "join":
                trees, kind = graft_host(topo, trees, source, host)
                assert kind in ("noop", "covered", "branch")
            else:
                trees, _changed = prune_host(trees, host)
        assert covered_hosts(trees) == final
        assert_valid_trees(topo, trees, source)
        # The from-scratch re-peel of the surviving membership reaches the
        # exact same receiver set.
        repeeled = planner.plan(source, sorted(final)).static_trees
        assert covered_hosts(repeeled) == final

    @given(churn_sequences())
    @settings(max_examples=40, deadline=None)
    def test_pruned_receivers_keep_bit_identical_paths(self, case):
        source, members, ops, _final = case
        topo = topo8()
        trees = list(Peel(topo).plan(source, sorted(members)).static_trees)
        for op, host in ops:
            if op == "join":
                trees, _ = graft_host(topo, trees, source, host)
                continue
            survivors = covered_hosts(trees) - {host}
            before = {
                r: next(t for t in trees if r in t.parent).path_from_root(r)
                for r in survivors
            }
            trees, _ = prune_host(trees, host)
            for r, path in before.items():
                tree = next(t for t in trees if r in t.parent)
                assert tree.path_from_root(r) == path


class TestLiveChurnInvariants:
    @given(churn_sequences())
    @settings(max_examples=15, deadline=None)
    def test_churned_collective_stays_exactly_once_and_finishes(self, case):
        """The full stack: joins graft + backfill, leaves prune, and the
        raise-mode invariant checker would fail the example on any double
        delivery, conservation breach, or unfinished receiver."""
        source, members, ops, final = case
        events = [
            ChurnEvent(20e-6 + 15e-6 * i, 0, op, host=host)
            for i, (op, host) in enumerate(ops)
        ]
        spec = ScenarioSpec(
            topology=topo8(),
            scheme="peel",
            jobs=(
                CollectiveJob(
                    0.0,
                    Group(
                        Gpu(source, 0),
                        (Gpu(source, 0), *(Gpu(h, 0) for h in sorted(members))),
                    ),
                    512 * KB,
                ),
            ),
            config=SimConfig(segment_bytes=32 * KB),
            check_invariants=True,
            churn=ChurnSchedule(tuple(events)),
        )
        result = run(spec)
        assert result.invariant_violations == []
        assert result.membership["joins"] + result.membership["leaves"] >= 0
        assert len(result.ccts) == 1
