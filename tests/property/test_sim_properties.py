"""Property-based tests on simulator invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import optimal_symmetric_tree
from repro.sim import Network, SimConfig, Transfer
from repro.topology import LeafSpine


@st.composite
def transfer_scenarios(draw):
    hosts_per_leaf = draw(st.integers(min_value=2, max_value=4))
    leaves = draw(st.integers(min_value=2, max_value=4))
    message = draw(st.sampled_from([1500, 65536, 2**20, 3 * 2**20 + 17]))
    seed = draw(st.integers(min_value=0, max_value=999))
    topo = LeafSpine(2, leaves, hosts_per_leaf)
    rng = random.Random(seed)
    hosts = topo.hosts
    src = hosts[rng.randrange(len(hosts))]
    num = draw(st.integers(min_value=1, max_value=min(6, len(hosts) - 1)))
    dests = rng.sample([h for h in hosts if h != src], num)
    return topo, src, dests, message


class TestConservation:
    @given(transfer_scenarios())
    @settings(max_examples=30, deadline=None)
    def test_bytes_equal_cost_times_message(self, scenario):
        topo, src, dests, message = scenario
        net = Network(topo, SimConfig(segment_bytes=65536))
        tree = optimal_symmetric_tree(topo, src, dests)
        done: set[str] = set()
        t = Transfer(net, "t", src, message, [tree],
                     on_host_done=lambda h, at: done.add(h))
        t.start()
        net.sim.run()
        assert t.complete
        assert done == set(dests)
        assert net.total_bytes_sent() == message * tree.cost

    @given(transfer_scenarios())
    @settings(max_examples=30, deadline=None)
    def test_buffers_drain_completely(self, scenario):
        topo, src, dests, message = scenario
        net = Network(topo, SimConfig(segment_bytes=65536))
        tree = optimal_symmetric_tree(topo, src, dests)
        Transfer(net, "t", src, message, [tree]).start()
        net.sim.run()
        for node in net.nodes.values():
            if hasattr(node, "buffered_bytes"):
                assert node.buffered_bytes == 0

    @given(transfer_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_cct_at_least_serialization(self, scenario):
        topo, src, dests, message = scenario
        net = Network(topo, SimConfig(segment_bytes=65536))
        tree = optimal_symmetric_tree(topo, src, dests)
        t = Transfer(net, "t", src, message, [tree])
        t.start()
        net.sim.run()
        assert t.complete_at >= message * 8 / topo.link_bps
