"""Property-based tests for the event engine."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Simulator


class TestOrdering:
    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=60))
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired: list[float] = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=40))
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        stamps: list[float] = []

        def record():
            stamps.append(sim.now)
            assert sim.now >= (stamps[-2] if len(stamps) > 1 else 0.0)

        for d in delays:
            sim.schedule(d, record)
        sim.run()
        assert sim.now == max(delays)

    @given(
        st.lists(st.floats(min_value=0, max_value=10), min_size=2, max_size=30),
        st.data(),
    )
    def test_cancellation_removes_exactly_those(self, delays, data):
        sim = Simulator()
        fired: list[int] = []
        handles = [
            sim.schedule(d, fired.append, i) for i, d in enumerate(delays)
        ]
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(delays) - 1))
        )
        for i in to_cancel:
            handles[i].cancel()
        sim.run()
        assert sorted(fired) == sorted(set(range(len(delays))) - to_cancel)
