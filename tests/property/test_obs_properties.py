"""Property-based tests for the observability primitives.

Pins the two algebraic guarantees the sweep executor relies on — histogram
merge is associative/commutative and conserves the sample count, so
folding per-point registries in any grouping or order yields the same
aggregate — and the structural guarantee the trace viewer relies on: span
trees built through the tracer API are always well-nested.
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.obs import Histogram, MetricsRegistry, SpanTracer, nesting_violations


def assert_equivalent(a: Histogram, b: Histogram) -> None:
    """Structural equality up to float-summation order: bucket counts and
    extrema must match exactly; ``sum`` only to relative tolerance, since
    float addition is not associative."""
    da, db = a.to_dict(), b.to_dict()
    sa, sb = da.pop("sum"), db.pop("sum")
    assert da == db
    assert math.isclose(sa, sb, rel_tol=1e-9, abs_tol=1e-9)

#: Strictly increasing finite bucket bounds.
bounds_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
    unique=True,
).map(sorted)

samples_strategy = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    max_size=40,
)


def _hist(bounds, samples) -> Histogram:
    h = Histogram("h", bounds)
    for v in samples:
        h.observe(v)
    return h


class TestHistogramMergeAlgebra:
    @given(bounds_strategy, samples_strategy, samples_strategy)
    def test_commutative(self, bounds, xs, ys):
        ab = _hist(bounds, xs)
        ab.merge(_hist(bounds, ys))
        ba = _hist(bounds, ys)
        ba.merge(_hist(bounds, xs))
        assert ab.to_dict() == ba.to_dict()

    @given(bounds_strategy, samples_strategy, samples_strategy, samples_strategy)
    def test_associative(self, bounds, xs, ys, zs):
        left = _hist(bounds, xs)
        left.merge(_hist(bounds, ys))
        left.merge(_hist(bounds, zs))

        inner = _hist(bounds, ys)
        inner.merge(_hist(bounds, zs))
        right = _hist(bounds, xs)
        right.merge(inner)
        assert_equivalent(left, right)

    @given(bounds_strategy, samples_strategy, samples_strategy)
    def test_merge_conserves_sample_count(self, bounds, xs, ys):
        merged = _hist(bounds, xs)
        merged.merge(_hist(bounds, ys))
        assert merged.total == len(xs) + len(ys)
        assert sum(merged.counts) == merged.total

    @given(bounds_strategy, samples_strategy, samples_strategy)
    def test_merge_equals_observing_the_union(self, bounds, xs, ys):
        merged = _hist(bounds, xs)
        merged.merge(_hist(bounds, ys))
        assert_equivalent(merged, _hist(bounds, xs + ys))

    @given(bounds_strategy, samples_strategy)
    def test_every_sample_lands_in_its_bucket(self, bounds, xs):
        h = _hist(bounds, xs)
        # Cumulative counts at bound i == samples <= bounds[i].
        seen = 0
        for i, bound in enumerate(h.bounds):
            seen += h.counts[i]
            assert seen == sum(1 for x in xs if x <= bound)


class TestRegistryMerge:
    @given(samples_strategy, samples_strategy,
           st.integers(0, 100), st.integers(0, 100))
    def test_registry_merge_matches_per_metric_merge(self, xs, ys, ca, cb):
        def build(samples, count):
            reg = MetricsRegistry()
            reg.counter("c").inc(count)
            h = reg.histogram("h", (0.0, 1.0))
            for v in samples:
                h.observe(v)
            reg.gauge("g", "max").set(count)
            return reg

        merged = build(xs, ca).merge(build(ys, cb))
        assert merged["c"].value == ca + cb
        assert merged["h"].total == len(xs) + len(ys)
        assert merged["g"].value == max(ca, cb)


#: A recursive program of nested spans: each node is (duration fractions of
#: children placed inside the parent interval).
span_tree = st.recursive(
    st.just([]),
    lambda kids: st.lists(kids, max_size=3),
    max_leaves=12,
)


class TestSpanNesting:
    @given(span_tree, st.floats(min_value=1e-6, max_value=10.0))
    def test_api_built_trees_are_well_nested(self, tree, scale):
        tracer = SpanTracer()

        def emit(children, start, end, parent=None):
            span = tracer.add(
                f"s{len(tracer.spans)}", start, end, parent=parent
            )
            n = len(children)
            for i, grandkids in enumerate(children):
                # Children split the parent interval into disjoint slots
                # (clamped: float rounding can overshoot the parent end).
                lo = min(max(start + (end - start) * i / n, start), end)
                hi = min(max(start + (end - start) * (i + 1) / n, lo), end)
                emit(grandkids, lo, hi, parent=span)

        emit(tree, 0.0, scale)
        assert nesting_violations(tracer) == []
        trace = tracer.to_chrome_trace()
        assert len([e for e in trace["traceEvents"] if e["ph"] == "X"]) == len(
            tracer.spans
        )

    @given(st.lists(st.floats(min_value=0, max_value=1.0), max_size=20),
           st.floats(min_value=1.0, max_value=2.0))
    def test_close_all_leaves_no_open_spans(self, starts, horizon):
        tracer = SpanTracer()
        for i, t in enumerate(starts):
            tracer.begin(f"s{i}", t)
        tracer.close_all(horizon)
        assert tracer.open_spans == []
        assert nesting_violations(tracer) == []
