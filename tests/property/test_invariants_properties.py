"""Property tests: random job mixes + random fault schedules never trip an
invariant.

The InvariantChecker runs in raise mode, so any conservation, occupancy,
PFC-quota, exactly-once or deadlock violation fails the example outright;
repro.api.run additionally raises if a collective never finishes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import Gpu, Group
from repro.api import ScenarioSpec, run
from repro.faults import FaultSchedule
from repro.sim import SimConfig
from repro.topology import FatTree, LeafSpine
from repro.workloads import CollectiveJob

KB = 1024
SCHEMES = ("peel", "optimal")  # the schemes that re-plan around faults


def build_topo(kind):
    # Small fabrics with >= 2 disjoint spine/core paths so a single link
    # failure never partitions the fabric.
    if kind == "leafspine":
        return LeafSpine(2, 4, 2)
    return FatTree(4, hosts_per_tor=2)


@st.composite
def job_mixes(draw):
    kind = draw(st.sampled_from(["leafspine", "fattree"]))
    scheme = draw(st.sampled_from(SCHEMES))
    seed = draw(st.integers(min_value=0, max_value=499))
    num_jobs = draw(st.integers(min_value=1, max_value=3))
    topo = build_topo(kind)
    rng = random.Random(seed)
    jobs = []
    arrival = 0.0
    for _ in range(num_jobs):
        n = rng.randint(3, min(10, len(topo.hosts)))
        members = tuple(Gpu(h, 0) for h in rng.sample(topo.hosts, n))
        message = rng.choice([256 * KB, 512 * KB, 2**20])
        jobs.append(CollectiveJob(arrival, Group(members[0], members), message))
        arrival += rng.uniform(0.0, 400e-6)
    return kind, scheme, jobs, seed


@st.composite
def fault_plans(draw):
    """A connectivity-preserving schedule of one or two single-link flaps
    (distinct links, each with >= 2 redundant siblings in these fabrics)."""
    kind, scheme, jobs, seed = draw(job_mixes())
    rng = random.Random(seed + 1)
    num_faults = draw(st.integers(min_value=1, max_value=2))
    if kind == "leafspine":
        # A leaf here has exactly two uplinks, so two faults must hit
        # distinct leaves or overlapping down windows partition one.
        chosen = [
            (f"spine:{rng.randint(0, 1)}", f"leaf:{l}")
            for l in rng.sample(range(4), num_faults)
        ]
    else:
        # core:g:i attaches to agg g of every pod; every ToR reaches both
        # aggs of its pod, so any two distinct core-agg links leave each
        # host connected.
        links = [
            (f"core:{g}:{i}", f"agg:p{p}:{g}")
            for g in range(2)
            for i in range(2)
            for p in range(4)
        ]
        chosen = rng.sample(links, num_faults)
    schedule = FaultSchedule()
    for u, v in chosen:
        down_at = rng.uniform(20e-6, 600e-6)
        if rng.random() < 0.5:
            schedule.link_down(u, v, at_s=down_at)
        else:
            schedule.link_flap(
                u, v, down_at_s=down_at, up_at_s=down_at + rng.uniform(100e-6, 2e-3)
            )
    return kind, scheme, jobs, schedule


class TestInvariantsHold:
    @given(job_mixes())
    @settings(max_examples=12, deadline=None)
    def test_clean_fabric_random_jobs(self, mix):
        _kind, scheme, jobs, seed = mix
        topo = build_topo(_kind)
        result = run(ScenarioSpec(
            topology=topo,
            scheme=scheme,
            jobs=tuple(jobs),
            config=SimConfig(segment_bytes=64 * KB, seed=seed),
            check_invariants=True,
        ))
        assert result.invariant_violations == []

    @given(fault_plans())
    @settings(max_examples=12, deadline=None)
    def test_faulted_fabric_random_jobs(self, plan):
        kind, scheme, jobs, schedule = plan
        topo = build_topo(kind)
        result = run(ScenarioSpec(
            topology=topo,
            scheme=scheme,
            jobs=tuple(jobs),
            config=SimConfig(segment_bytes=64 * KB),
            check_invariants=True,
            fault_schedule=schedule,
        ))
        assert result.invariant_violations == []
        assert topo.is_symmetric  # runner worked on a copy
