"""Public API surface: everything exported is importable and documented."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.topology",
    "repro.steiner",
    "repro.core",
    "repro.state",
    "repro.sim",
    "repro.collectives",
    "repro.workloads",
    "repro.metrics",
    "repro.api",
    "repro.replay",
    "repro.serve",
    "repro.experiments",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        """The README's imports must keep working."""
        from repro import (  # noqa: F401
            CollectiveEnv,
            FatTree,
            Gpu,
            Group,
            Peel,
            ScenarioSpec,
            run,
            scheme_by_name,
        )


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_importable_with_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES[:-1])
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES[:-1])
    def test_public_callables_documented(self, module_name):
        """Every public class/function named in __all__ carries a docstring."""
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
