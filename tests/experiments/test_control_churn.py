"""Control-plane churn campaign: determinism, accounting, table shape."""

from repro.experiments import control_churn


def small_rows(**kwargs):
    return control_churn.run(num_jobs=16, seed=3, **kwargs)


class TestCampaign:
    def test_completes_cleanly_with_churn(self):
        rows = small_rows()
        assert [r.replan for r in rows] == [False, True]
        for row in rows:
            assert row.completed == 16
            assert row.violations == 0
            assert row.joins + row.leaves > 0
            assert row.prunes + row.grafts + row.full_repeels > 0

    def test_replanner_row_actually_replans_at_scale(self):
        # 16 jobs is too sparse to congest reliably; the default campaign
        # is the shape EXPERIMENTS.md records.  Here we only require that
        # the off-row never replans and both rows agree on the workload.
        off, on = small_rows()
        assert off.replans == 0
        assert (off.joins, off.leaves) == (on.joins, on.leaves)

    def test_digest_is_stable_across_runs(self):
        first = small_rows()
        second = small_rows()
        assert [r.digest for r in first] == [r.digest for r in second]
        assert first == second

    def test_seed_changes_the_campaign(self):
        base = small_rows()
        other = control_churn.run(num_jobs=16, seed=4)
        assert [r.digest for r in base] != [r.digest for r in other]


class TestSweepDeterminism:
    """Serial and 4-worker campaigns byte-identical (ISSUE acceptance)."""

    def test_serial_vs_parallel_rows_identical(self):
        serial = small_rows(jobs=1)
        pooled = small_rows(jobs=4)
        assert serial == pooled
        assert [r.digest for r in serial] == [r.digest for r in pooled]


class TestFormatTable:
    def test_table_has_header_and_one_line_per_row(self):
        rows = small_rows()
        table = control_churn.format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 1 + len(rows)
        assert "p99_us" in lines[0] and "replans" in lines[0]
        assert lines[1].lstrip().startswith("off")
        assert lines[2].lstrip().startswith("on")
