"""The Figure 3 frontier sweep: shape of the trade-off, plus its
byte-identity under worker pools and sharded simulation."""

from repro.experiments import fig3_frontier


def tiny(**overrides):
    kwargs = dict(sizes=(2, 4), fanouts=(1, 2), schemes=("peel", "elmo", "bert",
                  "ip-multicast"))
    kwargs.update(overrides)
    return fig3_frontier.run(**kwargs)


class TestFrontierShape:
    def test_frontier_trade_off(self):
        rows = tiny()
        by = {(r.scheme, r.size, r.fanout): r for r in rows}
        for (scheme, _, _), r in by.items():
            if scheme in ("elmo", "bert"):
                # Source-routed: pay in headers, not in switch entries.
                assert r.header_bytes > 0
                assert r.switch_entries == 0
            if scheme == "peel":
                # Deploy-once prefix budget, zero header bytes.
                assert r.header_bytes == 0
                assert r.switch_entries > 0
            if scheme == "ip-multicast":
                assert r.header_bytes == 0
                assert r.switch_entries > 0

    def test_every_point_completes(self):
        for r in tiny():
            assert r.mean_cct_ms > 0

    def test_infeasible_shapes_are_skipped(self):
        # size 8 cannot fit one 2-host rack; the grid must not emit it.
        labels = [p.label for p in fig3_frontier.grid(sizes=(8,), fanouts=(1,))]
        assert labels == []

    def test_table_renders(self):
        text = fig3_frontier.format_table(tiny())
        assert "elmo" in text and "switch entries" in text


class TestFrontierDeterminism:
    def test_worker_pool_is_byte_identical(self):
        assert tiny() == tiny(jobs=4)

    def test_sharded_points_are_byte_identical(self):
        assert tiny() == tiny(shards=2)
