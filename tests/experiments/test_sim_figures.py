"""Simulation-backed figures at miniature scale: orderings must hold."""

import pytest

from repro.experiments import fig4_orca, fig5_message_size, fig6_scale, fig7_failures
from repro.experiments.common import rows_for


@pytest.fixture(scope="module")
def fig5_rows():
    return fig5_message_size.run(sizes_mb=(8,), num_jobs=6, num_gpus=128)


class TestFig5Mini:
    def test_all_schemes_present(self, fig5_rows):
        assert {r.scheme for r in fig5_rows} == {
            "ring", "tree", "optimal", "orca", "peel", "peel+cores",
        }

    def test_peel_beats_unicast(self, fig5_rows):
        by = {r.scheme: r for r in fig5_rows}
        assert by["peel"].mean_s < by["ring"].mean_s
        assert by["peel"].mean_s < by["tree"].mean_s

    def test_optimal_is_floor(self, fig5_rows):
        by = {r.scheme: r for r in fig5_rows}
        for scheme in ("ring", "tree", "orca", "peel"):
            assert by["optimal"].mean_s <= by[scheme].mean_s * 1.05


class TestFig4Mini:
    def test_controller_overhead_visible(self):
        rows = fig4_orca.run(sizes_mb=(8,), num_jobs=6, num_gpus=128)
        inflation = fig4_orca.tail_inflation(rows, 8)
        assert inflation > 1.5  # ~10 ms setup on a ~10 ms collective


class TestFig6Mini:
    def test_scale_ordering(self):
        rows = fig6_scale.run(scales=(64,), num_jobs=5, message_mb=16)
        by = {r.scheme: r for r in rows}
        assert by["peel"].mean_s < by["ring"].mean_s
        assert by["peel"].mean_s < by["tree"].mean_s

    def test_ring_grows_with_scale(self):
        rows = fig6_scale.run(scales=(32, 128), num_jobs=4, message_mb=8)
        ring = {r.x: r for r in rows_for(rows, "ring")}
        assert ring[128].mean_s > ring[32].mean_s * 1.5


class TestFig7Mini:
    def test_peel_fastest_under_failures(self):
        rows = fig7_failures.run(failure_pcts=(4,), num_jobs=6)
        by = {r.scheme: r for r in rows}
        assert by["peel"].mean_s < by["ring"].mean_s
        assert by["peel"].mean_s < by["tree"].mean_s
        assert by["peel"].p99_s < by["ring"].p99_s
