"""Serving sweep experiment: per-(scheme, load) SLO rows."""

from repro.experiments import fig_serving


class TestServingSweep:
    def test_rows_cover_the_grid(self):
        rows = fig_serving.run(loads=(0.3,), num_jobs=25)
        assert [r.scheme for r in rows] == list(fig_serving.DEFAULT_SCHEMES)
        by = {r.scheme: r for r in rows}
        # The §3 story at serving granularity: deploy-once vs churn.
        assert by["peel"].switch_updates == 0
        assert by["peel"].cache_hit_rate > 0
        assert by["orca"].switch_updates > by["ip-multicast"].switch_updates > 0
        assert by["orca"].p99_ms > by["peel"].p99_ms  # controller setup tax

    def test_failure_replay_completes_every_scheme(self):
        rows = fig_serving.run_with_failures(num_jobs=20)
        assert len(rows) == len(fig_serving.DEFAULT_SCHEMES)
        assert all(r.load == -1.0 for r in rows)
        assert all(r.p99_ms > 0 for r in rows)

    def test_table_renders_with_fault_marker(self):
        rows = fig_serving.run(
            loads=(0.5,), schemes=("peel",), num_jobs=15, with_failures=True
        )
        text = fig_serving.format_table(rows)
        assert "fault" in text
        assert "hit%" in text
