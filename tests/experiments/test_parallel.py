"""Process-pool sweep executor: ordering, errors, determinism."""

import pytest

from repro.experiments import format_cct_table
from repro.experiments.parallel import (
    SweepPoint,
    flatten,
    resolve_jobs,
    run_sweep,
)


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"point {x} failed")


def _slow_identity(x):
    # Enough work that completion order scrambles under a pool.
    total = 0
    for i in range((5 - x) * 20000):
        total += i
    return x


class TestSweepPoint:
    def test_callable(self):
        assert SweepPoint(_square, dict(x=3))() == 9

    def test_is_picklable(self):
        import pickle

        point = SweepPoint(_square, dict(x=4), label="sq")
        clone = pickle.loads(pickle.dumps(point))
        assert clone() == 16
        assert clone.label == "sq"


class TestResolveJobs:
    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_none_means_cpu_count(self):
        assert resolve_jobs(None) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestRunSweep:
    def test_serial_preserves_order(self):
        points = [SweepPoint(_square, dict(x=i)) for i in range(5)]
        assert run_sweep(points, jobs=1) == [0, 1, 4, 9, 16]

    def test_parallel_preserves_order(self):
        points = [SweepPoint(_slow_identity, dict(x=i)) for i in range(5)]
        assert run_sweep(points, jobs=4) == [0, 1, 2, 3, 4]

    def test_serial_and_parallel_agree(self):
        points = [SweepPoint(_square, dict(x=i)) for i in range(6)]
        assert run_sweep(points, jobs=1) == run_sweep(points, jobs=3)

    def test_worker_exception_propagates(self):
        points = [SweepPoint(_square, dict(x=1)), SweepPoint(_boom, dict(x=2))]
        with pytest.raises(RuntimeError, match="point 2 failed"):
            run_sweep(points, jobs=2)

    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="point 9 failed"):
            run_sweep([SweepPoint(_boom, dict(x=9))], jobs=1)

    def test_progress_called_per_point(self):
        seen = []
        points = [SweepPoint(_square, dict(x=i), label=f"p{i}")
                  for i in range(3)]
        run_sweep(points, jobs=1,
                  progress=lambda done, total, p: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_empty_grid(self):
        assert run_sweep([], jobs=4) == []


class TestFlatten:
    def test_concatenates_lists(self):
        assert flatten([[1, 2], [3]]) == [1, 2, 3]

    def test_passes_scalars_through(self):
        assert flatten([1, [2, 3], 4]) == [1, 2, 3, 4]


class TestSweepDeterminism:
    """Serial and 4-worker sweeps must be byte-identical (ISSUE acceptance)."""

    def test_fig5_tables_byte_identical(self):
        from repro.experiments import fig5_message_size

        kwargs = dict(sizes_mb=(2,), num_jobs=2, num_gpus=32)
        serial = fig5_message_size.run(**kwargs, jobs=1)
        parallel = fig5_message_size.run(**kwargs, jobs=4)
        assert (format_cct_table(serial, "msg (MB)")
                == format_cct_table(parallel, "msg (MB)"))

    def test_fig1_rows_identical(self):
        from repro.experiments import fig1_bandwidth

        assert fig1_bandwidth.run(jobs=1) == fig1_bandwidth.run(jobs=4)

    def test_serving_tables_byte_identical(self):
        from repro.experiments import fig_serving

        kwargs = dict(loads=(0.5,), schemes=("peel", "orca"), num_jobs=20)
        serial = fig_serving.run(**kwargs, jobs=1)
        parallel = fig_serving.run(**kwargs, jobs=4)
        assert (fig_serving.format_table(serial)
                == fig_serving.format_table(parallel))
