"""Scenario runner behaviour."""

import pytest

from repro.experiments import run_broadcast_scenario, segment_bytes_for
from repro.sim import SimConfig
from repro.topology import LeafSpine
from repro.workloads import generate_jobs


@pytest.fixture
def small_setup():
    topo = LeafSpine(4, 8, 4)
    jobs = generate_jobs(
        topo, 4, num_gpus=8, message_bytes=2**20, gpus_per_host=1, seed=1
    )
    return topo, jobs


class TestRunner:
    def test_returns_all_ccts(self, small_setup):
        topo, jobs = small_setup
        result = run_broadcast_scenario(topo, "peel", jobs, SimConfig())
        assert len(result.ccts) == len(jobs)
        assert all(c > 0 for c in result.ccts)
        assert result.total_bytes > 0

    def test_accepts_scheme_instance(self, small_setup):
        from repro.collectives import RingBroadcast

        topo, jobs = small_setup
        result = run_broadcast_scenario(topo, RingBroadcast(), jobs, SimConfig())
        assert result.scheme == "ring"

    def test_same_workload_is_reproducible(self, small_setup):
        topo, jobs = small_setup
        a = run_broadcast_scenario(topo, "optimal", jobs, SimConfig())
        b = run_broadcast_scenario(topo, "optimal", jobs, SimConfig())
        assert a.ccts == b.ccts

    def test_stall_detection(self, small_setup):
        topo, jobs = small_setup
        with pytest.raises(RuntimeError, match="never completed"):
            run_broadcast_scenario(topo, "optimal", jobs, SimConfig(), max_events=3)


class TestSegmentSizing:
    def test_small_messages_floor(self):
        assert segment_bytes_for(2**20) == 65536

    def test_large_messages_bounded_count(self):
        size = segment_bytes_for(512 * 2**20)
        assert 512 * 2**20 / size <= 65

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            segment_bytes_for(0)

    @pytest.mark.parametrize(
        "message", [1500, 2048, 4096, 10 * 1024, 63 * 1024, 2**20, 512 * 2**20]
    )
    def test_never_exceeds_message(self, message):
        """Regression: a 1 KiB message used to get a 64 KiB segment size."""
        assert segment_bytes_for(message) <= max(message, 1500)

    def test_sub_mtu_message_uses_mtu_floor(self):
        # SimConfig refuses segment_bytes below one MTU; the actual segment
        # emitted for a 1 KiB message is still 1 KiB (segments_for caps it).
        assert segment_bytes_for(1024) == 1500
        assert SimConfig(segment_bytes=segment_bytes_for(1024)).segments_for(
            1024
        ) == [1024]

    def test_mid_size_message_is_single_segment(self):
        assert segment_bytes_for(10 * 1024) == 10 * 1024

    def test_config_accepts_every_sizing(self):
        for message in (1024, 1500, 8 * 1024, 2**20, 64 * 2**20):
            SimConfig(segment_bytes=segment_bytes_for(message))


class TestCorrectnessWiring:
    def test_invariants_clean_on_small_scenario(self, small_setup):
        topo, jobs = small_setup
        result = run_broadcast_scenario(
            topo, "peel", jobs, SimConfig(), check_invariants=True
        )
        assert result.invariant_violations == []
        assert result.failure_drops == 0
        assert result.repeels == []

    def test_defaults_skip_correctness_tooling(self, small_setup):
        topo, jobs = small_setup
        result = run_broadcast_scenario(topo, "peel", jobs, SimConfig())
        assert result.invariant_violations == []
        assert result.trace_digest is None
