"""Scenario runner behaviour."""

import pytest

from repro.experiments import run_broadcast_scenario, segment_bytes_for
from repro.sim import SimConfig
from repro.topology import LeafSpine
from repro.workloads import generate_jobs


@pytest.fixture
def small_setup():
    topo = LeafSpine(4, 8, 4)
    jobs = generate_jobs(
        topo, 4, num_gpus=8, message_bytes=2**20, gpus_per_host=1, seed=1
    )
    return topo, jobs


class TestRunner:
    def test_returns_all_ccts(self, small_setup):
        topo, jobs = small_setup
        result = run_broadcast_scenario(topo, "peel", jobs, SimConfig())
        assert len(result.ccts) == len(jobs)
        assert all(c > 0 for c in result.ccts)
        assert result.total_bytes > 0

    def test_accepts_scheme_instance(self, small_setup):
        from repro.collectives import RingBroadcast

        topo, jobs = small_setup
        result = run_broadcast_scenario(topo, RingBroadcast(), jobs, SimConfig())
        assert result.scheme == "ring"

    def test_same_workload_is_reproducible(self, small_setup):
        topo, jobs = small_setup
        a = run_broadcast_scenario(topo, "optimal", jobs, SimConfig())
        b = run_broadcast_scenario(topo, "optimal", jobs, SimConfig())
        assert a.ccts == b.ccts

    def test_stall_detection(self, small_setup):
        topo, jobs = small_setup
        with pytest.raises(RuntimeError, match="never completed"):
            run_broadcast_scenario(topo, "optimal", jobs, SimConfig(), max_events=3)


class TestSegmentSizing:
    def test_small_messages_floor(self):
        assert segment_bytes_for(2**20) == 65536

    def test_large_messages_bounded_count(self):
        size = segment_bytes_for(512 * 2**20)
        assert 512 * 2**20 / size <= 65

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            segment_bytes_for(0)
