"""Extension experiments: fragmentation packing and incremental deployment."""

import random

import pytest

from repro.experiments import deployment, fragmentation
from repro.topology import FatTree, LeafSpine
from repro.workloads import place_job_racks


class TestPlaceJobRacks:
    def test_dense_window_is_contiguous(self):
        topo = FatTree(8, hosts_per_tor=4)
        group = place_job_racks(topo, 4, 4, random.Random(0))
        racks = sorted({topo.tor_of(h) for h in group.hosts})
        assert len(racks) == 4
        assert len(group.members) == 16  # whole racks

    def test_sparse_window_leaves_gaps(self):
        topo = FatTree(8, hosts_per_tor=4)
        hits = 0
        for seed in range(10):
            group = place_job_racks(topo, 4, 12, random.Random(seed))
            racks = {topo.tor_of(h) for h in group.hosts}
            assert len(racks) == 4
            ids = sorted(int(r.rsplit(":", 1)[1]) for r in racks)
            pods = {r.split(":")[1] for r in racks}
            if len(pods) > 1 or ids != list(range(ids[0], ids[0] + 4)):
                hits += 1
        assert hits > 5  # scattered most of the time

    def test_leafspine_supported(self):
        topo = LeafSpine(4, 8, 2)
        group = place_job_racks(topo, 3, 6, random.Random(1))
        assert len({topo.tor_of(h) for h in group.hosts}) == 3

    def test_rejects_bad_window(self):
        topo = LeafSpine(2, 4, 1)
        with pytest.raises(ValueError):
            place_job_racks(topo, 3, 2)
        with pytest.raises(ValueError):
            place_job_racks(topo, 1, 100)
        with pytest.raises(ValueError):
            place_job_racks(topo, 0, 2)


class TestFragmentationStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return fragmentation.run(windows=(8, 16), trials=6)

    def test_sparser_needs_more_packets(self, rows):
        exact = {r.window_racks: r for r in rows if r.policy == "exact"}
        assert exact[16].mean_packets > exact[8].mean_packets

    def test_exact_never_wastes(self, rows):
        assert all(r.mean_wasted_tors == 0 for r in rows if r.policy == "exact")

    def test_budget_trades_packets_for_waste(self, rows):
        at16 = {r.policy: r for r in rows if r.window_racks == 16}
        assert at16["budget-1"].mean_packets <= at16["exact"].mean_packets
        assert at16["budget-1"].mean_wasted_tors >= at16["exact"].mean_wasted_tors

    def test_refined_cost_immune_to_policy(self, rows):
        at16 = {r.policy: r for r in rows if r.window_racks == 16}
        assert at16["budget-1"].mean_refined_cost == at16["exact"].mean_refined_cost

    def test_table_renders(self, rows):
        assert "window" in fragmentation.format_table(rows)


class TestDeploymentStudy:
    def test_each_stage_improves(self):
        rows = deployment.run(num_jobs=4, num_gpus=128, message_mb=16)
        by = {r.stage: r for r in rows}
        assert by["static"].mean_s < by["unicast"].mean_s
        assert by["full"].mean_s <= by["static"].mean_s
        assert by["static"].fabric_bytes < by["unicast"].fabric_bytes

    def test_table_renders(self):
        rows = deployment.run(num_jobs=3, num_gpus=64, message_mb=8)
        assert "stage" in deployment.format_table(rows)
