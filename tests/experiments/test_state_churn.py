"""Group-churn state accounting."""

from repro.experiments import state_churn


class TestChurn:
    def test_rows_and_invariants(self):
        rows = state_churn.run(num_jobs=200, arrival_rate_per_s=500.0)
        by = {r.scheme: r for r in rows}
        assert set(by) == {"ip-multicast", "orca", "peel"}
        # PEEL: static k-1 rules, zero updates, always fits.
        assert by["peel"].rule_updates == 0
        assert by["peel"].peak_entries_per_switch == 7
        assert not by["peel"].overflows_tcam
        # Orca churns two updates (install+remove) per group per switch.
        assert by["orca"].rule_updates >= 2 * by["ip-multicast"].rule_updates / 2
        assert by["orca"].peak_entries_per_switch >= by["ip-multicast"].peak_entries_per_switch

    def test_more_concurrency_more_orca_state(self):
        low = state_churn.run(num_jobs=150, arrival_rate_per_s=200.0, seed=1)
        high = state_churn.run(num_jobs=150, arrival_rate_per_s=2000.0, seed=1)
        orca_low = next(r for r in low if r.scheme == "orca")
        orca_high = next(r for r in high if r.scheme == "orca")
        assert orca_high.peak_entries_per_switch > orca_low.peak_entries_per_switch

    def test_small_tcam_overflows(self):
        rows = state_churn.run(
            num_jobs=400, arrival_rate_per_s=2000.0, tcam_capacity=16
        )
        by = {r.scheme: r for r in rows}
        assert by["orca"].overflows_tcam
        assert not by["peel"].overflows_tcam

    def test_table_renders(self):
        rows = state_churn.run(num_jobs=50, arrival_rate_per_s=200.0)
        text = state_churn.format_table(rows)
        assert "peel" in text and "OVERFLOW" in text or "fits" in text
