"""Each figure module runs (tiny configs) and preserves the paper's shape
where the claim is cheap enough to check in CI."""

import pytest

from repro.experiments import fig1_bandwidth, fig3_rsbf, headline, tree_quality
from repro.experiments.common import mean_ratio, rows_for


class TestFig1:
    def test_rows_and_shape(self):
        rows = fig1_bandwidth.run()
        by_scheme = {r.scheme: r for r in rows}
        assert by_scheme["optimal"].overshoot_vs_optimal == 0
        # §1: unicast rings/trees overshoot the multicast optimum by 60-120%.
        assert by_scheme["ring"].overshoot_vs_optimal > 0.3
        assert by_scheme["tree"].overshoot_vs_optimal > by_scheme["ring"].overshoot_vs_optimal

    def test_table_renders(self):
        text = fig1_bandwidth.format_table(fig1_bandwidth.run())
        assert "ring" in text and "optimal" in text


class TestFig3:
    def test_mtu_crossover_at_k32(self):
        rows = fig3_rsbf.run()
        at = {(r.k, r.fpr): r for r in rows}
        assert not at[(32, 0.20)].exceeds_mtu
        assert at[(64, 0.20)].exceeds_mtu
        assert at[(64, 0.01)].exceeds_mtu

    def test_monotone_in_k_and_fpr(self):
        rows = fig3_rsbf.run()
        for fpr in (0.01, 0.20):
            sizes = [r.rsbf_header_bytes for r in rows if r.fpr == fpr]
            assert sizes == sorted(sizes)

    def test_peel_headers_flat_and_tiny(self):
        rows = fig3_rsbf.run()
        assert all(r.peel_header_bytes < 8 for r in rows)


class TestHeadline:
    def test_state_table(self):
        rows = headline.state_table()
        at64 = next(r for r in rows if r.k == 64)
        assert at64.peel_rules == 63
        assert at64.ip_multicast_entries > 4e9
        assert at64.header_bytes < 8
        assert at64.hosts == 65536

    def test_bandwidth_headline(self):
        bw = headline.bandwidth_headline(num_gpus=64, trials=10)
        # §1: PEEL uses ~23% less aggregate bandwidth than unicast rings.
        assert bw.peel_saving_vs_ring > 0.10
        # And sits close to the Steiner optimum.
        assert bw.peel_overhead_vs_optimal < 0.30

    def test_tables_render(self):
        assert "PEEL rules" in headline.format_state_table(headline.state_table())


class TestTreeQuality:
    def test_ratios_bounded(self):
        rows = tree_quality.run(failure_fractions=(0.1,), trials=5)
        row = rows[0]
        assert 1.0 <= row.mean_ratio_vs_exact <= 1.6
        assert row.worst_ratio_vs_exact < 2.0

    def test_table_renders(self):
        rows = tree_quality.run(failure_fractions=(0.05,), trials=3)
        assert "vs OPT" in tree_quality.format_table(rows)


class TestCommonHelpers:
    def test_mean_ratio(self):
        from repro.experiments import CctRow

        rows = [
            CctRow("a", 1, 0.2, 0.3),
            CctRow("b", 1, 0.1, 0.2),
            CctRow("a", 2, 0.4, 0.5),
            CctRow("b", 2, 0.2, 0.3),
        ]
        assert mean_ratio(rows, "a", "b") == pytest.approx(2.0)
        assert len(rows_for(rows, "a")) == 2

    def test_mean_ratio_requires_overlap(self):
        from repro.experiments import CctRow

        with pytest.raises(ValueError):
            mean_ratio([CctRow("a", 1, 0.1, 0.1)], "a", "b")
