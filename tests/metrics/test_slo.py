"""The single percentile convention and the SLO summary built on it."""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro.metrics import SloSummary, percentile, summarize_slo
from repro.metrics.cct import summarize_ccts


class TestPercentileConvention:
    def test_endpoints_are_min_and_max(self):
        xs = [5.0, 1.0, 3.0]
        assert percentile(xs, 0) == 1.0
        assert percentile(xs, 100) == 5.0

    def test_singleton_sample_is_constant(self):
        for q in (0, 37, 50, 99, 100):
            assert percentile([7.5], q) == 7.5

    def test_even_sample_median_interpolates(self):
        # rank = 0.5 * (4 - 1) = 1.5 -> halfway between the middle two.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_matches_statistics_median(self):
        xs = [0.4, 0.1, 0.9, 0.3, 0.6, 0.2]
        assert percentile(xs, 50) == pytest.approx(statistics.median(xs))

    def test_p99_of_101_uniform_samples(self):
        # rank = 0.99 * 100 = 99 exactly -> the 100th order statistic.
        xs = [i / 100 for i in range(101)]
        assert percentile(xs, 99) == pytest.approx(0.99)

    def test_interpolation_between_ranks(self):
        # n=5: rank = 0.9 * 4 = 3.6 -> 0.6 of the way from xs[3] to xs[4].
        xs = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(xs, 90) == pytest.approx(46.0)

    def test_unsorted_input_is_sorted_first(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    def test_matches_numpy_linear_method(self):
        rng = np.random.default_rng(42)
        xs = rng.exponential(1.0, size=137).tolist()
        for q in (0, 1, 25, 50, 75, 99, 100):
            assert percentile(xs, q) == pytest.approx(
                float(np.percentile(xs, q)), rel=1e-12
            )

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.5)

    def test_cct_stats_use_the_same_convention(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        stats = summarize_ccts(xs)
        assert stats.p50_s == percentile(xs, 50)
        assert stats.p99_s == percentile(xs, 99)


class TestSummarizeSlo:
    def test_basic_roll_up(self):
        row = summarize_slo(
            "train",
            ccts=[1e-3, 2e-3, 3e-3, 4e-3],
            queue_delays=[0.0, 1e-4, 2e-4, 3e-4],
            rejected=1,
            delivered_bytes=10**6,
            span_s=0.5,
        )
        assert isinstance(row, SloSummary)
        assert row.submitted == 5
        assert row.completed == 4
        assert row.reject_rate == pytest.approx(0.2)
        assert row.p99_queue_s == percentile([0.0, 1e-4, 2e-4, 3e-4], 99)
        assert row.goodput_bps == pytest.approx(10**6 * 8 / 0.5)

    def test_no_completions(self):
        row = summarize_slo("t", [], [], rejected=3,
                            delivered_bytes=0, span_s=1.0)
        assert row.completed == 0
        assert row.reject_rate == 1.0
        assert row.p99_queue_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_slo("t", [1.0], [], 0, 0, 1.0)  # length mismatch
        with pytest.raises(ValueError):
            summarize_slo("t", [], [], -1, 0, 1.0)  # negative rejects
        with pytest.raises(ValueError):
            summarize_slo("t", [], [], 0, 0, 0.0)  # non-positive span
        with pytest.raises(ValueError):
            summarize_slo("t", [1.0], [-1e-6], 0, 0, 1.0)  # negative delay
