"""Bandwidth accounting: the Figure 1 math."""

import pytest

from repro.core import optimal_symmetric_tree
from repro.metrics import (
    chain_link_loads,
    summarize_loads,
    tree_link_loads,
)
from repro.steiner import MulticastTree
from repro.topology import LeafSpine


@pytest.fixture
def fig1_fabric():
    """Figure 1's fabric: 2 spines, 2 leaves, 4 GPUs per leaf."""
    return LeafSpine(2, 2, 4)


class TestTreeLoads:
    def test_single_tree_unit_loads(self, fig1_fabric):
        src = "host:l0:0"
        dests = [h for h in fig1_fabric.hosts if h != src]
        tree = optimal_symmetric_tree(fig1_fabric, src, dests)
        loads = tree_link_loads([tree])
        assert all(v == 1 for v in loads.values())
        assert sum(loads.values()) == tree.cost

    def test_overlapping_trees_accumulate(self):
        t1 = MulticastTree("a", {"b": "a"})
        t2 = MulticastTree("a", {"b": "a", "c": "b"})
        loads = tree_link_loads([t1, t2])
        assert loads[("a", "b")] == 2
        assert loads[("b", "c")] == 1


class TestChainLoads:
    def test_ring_core_crossings(self, fig1_fabric):
        """A locality-ordered ring crosses the core twice (out and...
        actually once per direction change): hosts l0:0..3 then l1:0..3."""
        hosts = sorted(fig1_fabric.hosts)
        loads = chain_link_loads(fig1_fabric, hosts)
        core = [
            count
            for (u, v), count in loads.items()
            if "spine" in u or "spine" in v
        ]
        assert sum(core) == 2  # one leaf->spine + spine->leaf crossing

    def test_chain_host_links(self, fig1_fabric):
        hosts = sorted(fig1_fabric.hosts)[:3]
        loads = chain_link_loads(fig1_fabric, hosts)
        # Each hop is host-leaf-host: leaf->host delivered once per member.
        assert loads[("leaf:0", "host:l0:1")] == 1
        assert loads[("leaf:0", "host:l0:2")] == 1


class TestSummaries:
    def test_fig1_overshoot(self, fig1_fabric):
        """Ring and Tree burn more total bandwidth than the optimal tree;
        the paper reports 70-80% more on core links for this fabric."""
        src = sorted(fig1_fabric.hosts)[0]
        dests = [h for h in sorted(fig1_fabric.hosts) if h != src]

        optimal = summarize_loads(
            tree_link_loads([optimal_symmetric_tree(fig1_fabric, src, dests)])
        )
        ring = summarize_loads(chain_link_loads(fig1_fabric, [src] + dests))
        assert ring.total_traversals > optimal.total_traversals
        assert ring.overshoot_vs(optimal) > 0.3

    def test_summary_fields(self):
        loads = {("leaf:0", "spine:0"): 3, ("spine:0", "leaf:1"): 1}
        summary = summarize_loads(loads)
        assert summary.total_traversals == 4
        assert summary.max_link_traversals == 3

    def test_core_counts_switch_links_only(self, fig1_fabric):
        loads = {
            ("host:l0:0", "leaf:0"): 1,
            ("leaf:0", "spine:0"): 1,
            ("spine:0", "leaf:1"): 1,
        }
        assert summarize_loads(loads).core_traversals == 2

    def test_overshoot_rejects_empty_reference(self):
        empty = summarize_loads({})
        loaded = summarize_loads({("leaf:0", "spine:0"): 1})
        with pytest.raises(ValueError):
            loaded.overshoot_vs(empty)
