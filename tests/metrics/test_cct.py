"""CCT statistics."""

import pytest

from repro.metrics import summarize_ccts


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize_ccts([0.1, 0.2, 0.3, 0.4])
        assert stats.count == 4
        assert stats.mean_s == pytest.approx(0.25)
        assert stats.max_s == 0.4
        assert stats.p50_s == pytest.approx(0.25)

    def test_p99_near_max(self):
        stats = summarize_ccts([0.01] * 99 + [1.0])
        assert stats.p99_s > 0.9 * stats.max_s * 0.01 or stats.p99_s <= 1.0
        assert stats.p99_s > stats.p50_s

    def test_single_sample(self):
        stats = summarize_ccts([0.5])
        assert stats.mean_s == stats.p99_s == stats.max_s == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_ccts([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            summarize_ccts([0.1, -0.2])

    def test_str_rendering(self):
        text = str(summarize_ccts([0.001, 0.002]))
        assert "mean=" in text and "p99=" in text
