"""Line protocol, dispatcher, and both client transports."""

import threading

import pytest

from repro.control import (
    ControlPlane,
    ControlRequestError,
    ControlServer,
    Dispatcher,
    LocalClient,
    ProtocolError,
    SocketClient,
)
from repro.control.protocol import decode, encode
from repro.obs import Observability
from repro.sim import SimConfig
from repro.topology import LeafSpine

KB = 1024


def control_plane(**kwargs) -> ControlPlane:
    return ControlPlane(
        LeafSpine(2, 4, 2), "peel", SimConfig(segment_bytes=16 * KB), **kwargs
    )


class TestWireFormat:
    def test_encode_is_canonical(self):
        assert encode({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_decode_round_trip(self):
        req = decode(encode({"op": "ping"}))
        assert req == {"op": "ping"}

    @pytest.mark.parametrize(
        "line", ["", "   ", "not json", "[1,2]", '{"op":"reboot"}']
    )
    def test_decode_rejects_garbage(self, line):
        with pytest.raises(ProtocolError):
            decode(line)


class TestDispatcher:
    def test_domain_errors_become_error_responses(self):
        d = Dispatcher(control_plane())
        resp = d.handle({"op": "submit", "group": 7, "message_bytes": KB})
        assert resp["ok"] is False and "unknown group" in resp["error"]
        resp = d.handle({"op": "create", "tenant": "t"})
        assert resp["ok"] is False and "source" in resp["error"]

    def test_metrics_requires_obs(self):
        d = Dispatcher(control_plane())
        assert d.handle({"op": "metrics"})["ok"] is False


class TestLocalClient:
    def test_full_campaign_round_trip(self):
        client = LocalClient(control_plane(check_invariants=True))
        assert client.ping() == 0.0
        gid = client.create_group("t", "host:l0:0", ["host:l0:1"])
        job = client.submit(gid, 256 * KB)
        client.join(gid, "host:l1:0", at_s=20e-6)
        assert client.run() > 0
        report = client.report()
        assert report["completed"] == 1
        assert report["violations"] == []
        assert report["tenants"]["t"]["completed"] == 1
        events, cursor = client.events()
        kinds = [e["event"] for e in events]
        assert kinds[0] == "group_created"
        assert "join" in kinds and "job_done" in kinds
        assert client.events(cursor) == ([], cursor)
        stats = client.stats()
        assert stats["jobs"] == job + 1

    def test_errors_raise(self):
        client = LocalClient(control_plane())
        with pytest.raises(ControlRequestError):
            client.submit(5, KB)

    def test_metrics_snapshot(self):
        client = LocalClient(
            control_plane(obs=Observability(sample_interval_s=50e-6))
        )
        gid = client.create_group("t", "host:l0:0", ["host:l0:1"])
        client.submit(gid, 64 * KB)
        client.run()
        metrics = client.metrics()
        assert "counters" in metrics or metrics  # snapshot is non-empty


class TestSocketTransport:
    def test_socket_campaign_with_subscription(self, tmp_path):
        path = str(tmp_path / "control.sock")
        control = control_plane(
            check_invariants=True, obs=Observability(sample_interval_s=50e-6)
        )
        server = ControlServer(control, path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        deadline = 50
        import time

        for _ in range(deadline):
            try:
                client = SocketClient(path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                time.sleep(0.05)
        else:
            pytest.fail("server socket never came up")
        with client:
            assert client.ping() == 0.0
            client.subscribe()
            gid = client.create_group("t", "host:l0:0", ["host:l0:1"])
            client.submit(gid, 128 * KB)
            client.run()
            report = client.report()
            assert report["completed"] == 1
            # The subscription streamed events and a metrics snapshot.
            streams = {line["stream"] for line in client.stream}
            assert streams == {"event", "metrics"}
            kinds = [
                line["event"]
                for line in client.stream
                if line["stream"] == "event"
            ]
            assert "group_created" in kinds and "job_done" in kinds
            client.shutdown()
        thread.join(timeout=5)
        assert not thread.is_alive()
