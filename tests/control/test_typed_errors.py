"""Typed error surfacing: error kinds over the wire, churn × protection.

Refusals used to reach clients as bare strings; now every ``{"ok":
false}`` response carries a ``kind`` naming the exception family the
dispatcher caught, and both client transports raise the matching
:class:`ControlRequestError` subclass — so a campaign script can branch
on ``MembershipRequestError`` without regex-matching message text.  The
churn × protection combination is the motivating case: it is refused on
*every* path (scenario churn driver, control-plane constructor), and the
refusal must arrive typed through the local and socket clients alike.
"""

import threading
import time

import pytest

from repro.api import ScenarioRun, ScenarioSpec
from repro.collectives import Gpu, Group
from repro.control import (
    ChurnEvent,
    ControlError,
    ControlPlane,
    ControlPlaneRequestError,
    ControlRequestError,
    ControlServer,
    Dispatcher,
    LocalClient,
    MembershipError,
    MembershipRequestError,
    ProtocolRequestError,
    SocketClient,
)
from repro.control.protocol import error
from repro.sim import SimConfig
from repro.topology import LeafSpine
from repro.workloads import CollectiveJob

KB = 1024


def control_plane(**kwargs) -> ControlPlane:
    return ControlPlane(
        LeafSpine(2, 4, 2), "peel", SimConfig(segment_bytes=16 * KB), **kwargs
    )


def detach_host(control: ControlPlane, host: str) -> None:
    """Sever a host from its ToR so a mid-flight graft cannot reach it."""
    tor = control.env.topo.tor_of(host)
    control.env.topo.graph.remove_edge(host, tor)


def start_inflight_collective(client) -> int:
    """A group with one collective guaranteed to be in flight at `now`."""
    gid = client.create_group("t", "host:l0:0", ["host:l0:1", "host:l1:0"])
    client.submit(gid, 1 << 20)
    client.advance(until_s=10e-6)
    return gid


class TestProtocolErrorKind:
    def test_error_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match="kind"):
            error("boom", kind="mystery")

    def test_kind_is_omitted_when_absent(self):
        assert "kind" not in error("boom")
        assert error("boom", kind="control")["kind"] == "control"


class TestDispatcherKinds:
    def test_missing_field_is_protocol_kind(self):
        resp = Dispatcher(control_plane()).handle({"op": "create", "tenant": "t"})
        assert resp["ok"] is False and resp["kind"] == "protocol"

    def test_unknown_group_is_control_kind(self):
        resp = Dispatcher(control_plane()).handle(
            {"op": "submit", "group": 7, "message_bytes": KB}
        )
        assert resp["ok"] is False and resp["kind"] == "control"

    def test_unreachable_graft_is_membership_kind(self):
        control = control_plane()
        client = LocalClient(control)
        gid = start_inflight_collective(client)
        detach_host(control, "host:l3:1")
        resp = client.request("join", group=gid, host="host:l3:1")
        assert resp["ok"] is False and resp["kind"] == "membership"
        assert "disconnected" in resp["error"]


class TestLocalClientTyped:
    def test_control_refusal_raises_typed(self):
        client = LocalClient(control_plane())
        with pytest.raises(ControlPlaneRequestError) as exc:
            client.submit(5, KB)
        assert exc.value.kind == "control"
        assert isinstance(exc.value, ControlRequestError)

    def test_protocol_refusal_raises_typed(self):
        client = LocalClient(control_plane())
        with pytest.raises(ProtocolRequestError) as exc:
            client._checked("create", tenant="t")  # no source
        assert exc.value.kind == "protocol"

    def test_membership_refusal_raises_typed(self):
        control = control_plane()
        client = LocalClient(control)
        gid = start_inflight_collective(client)
        detach_host(control, "host:l3:1")
        with pytest.raises(MembershipRequestError) as exc:
            client.join(gid, "host:l3:1")
        assert exc.value.kind == "membership"

    def test_untyped_response_still_raises_base_error(self):
        # Talking to an old server that sends no kind must keep working.
        client = LocalClient(control_plane())
        original = client.dispatcher.handle
        client.dispatcher.handle = lambda req: {"ok": False, "error": "x"}
        try:
            with pytest.raises(ControlRequestError) as exc:
                client.ping()
            assert type(exc.value) is ControlRequestError
            assert exc.value.kind is None
        finally:
            client.dispatcher.handle = original


class TestSocketClientTyped:
    def test_kinds_survive_the_wire(self, tmp_path):
        path = str(tmp_path / "control.sock")
        control = control_plane()
        server = ControlServer(control, path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        for _ in range(50):
            try:
                client = SocketClient(path)
                break
            except (FileNotFoundError, ConnectionRefusedError):
                time.sleep(0.05)
        else:
            pytest.fail("server socket never came up")
        with client:
            with pytest.raises(ControlPlaneRequestError) as exc:
                client.submit(5, KB)
            assert exc.value.kind == "control"
            with pytest.raises(ProtocolRequestError):
                client._checked("create", tenant="t")
            gid = start_inflight_collective(client)
            detach_host(control, "host:l3:1")
            with pytest.raises(MembershipRequestError) as exc:
                client.join(gid, "host:l3:1")
            assert exc.value.kind == "membership"
            client.shutdown()
        thread.join(timeout=5)
        assert not thread.is_alive()


class TestChurnTimesProtection:
    def test_scenario_churn_with_protection_refused(self):
        topo = LeafSpine(2, 4, 2)
        members = (
            Gpu("host:l0:0", 0), Gpu("host:l0:1", 0), Gpu("host:l1:0", 0)
        )
        spec = ScenarioSpec(
            topology=topo,
            scheme="peel",
            jobs=(CollectiveJob(0.0, Group(members[0], members), 1 << 20),),
            config=SimConfig(segment_bytes=32 * KB),
            churn=(ChurnEvent(30e-6, 0, "join", host="host:l3:1"),),
            protection=1,
        )
        with pytest.raises(MembershipError, match="protection"):
            ScenarioRun(spec)

    def test_control_plane_protection_refused_as_control_error(self):
        with pytest.raises(ControlError, match="protection"):
            control_plane(protection=1)
