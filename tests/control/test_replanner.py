"""CongestionReplanner: hot-link detection, replan mechanics, termination."""

import pytest

from repro.control import CongestionReplanner, ControlPlane
from repro.sim import SimConfig
from repro.topology import LeafSpine

KB = 1024


def loaded_control(replanner) -> tuple[ControlPlane, list[int]]:
    """Four overlapping groups pushing multi-MB messages: enough shared
    spine load for the watch thresholds to trip."""
    control = ControlPlane(
        LeafSpine(2, 4, 2),
        "peel",
        SimConfig(segment_bytes=64 * KB),
        check_invariants=True,
        replanner=replanner,
    )
    h = control.env.topo.hosts
    gids = [
        control.create_group("a", h[0], [h[1], h[2], h[4]]),
        control.create_group("a", h[3], [h[2], h[5], h[6]]),
        control.create_group("b", h[7], [h[0], h[5]]),
        control.create_group("b", h[4], [h[1], h[6], h[7]]),
    ]
    for i, gid in enumerate(gids):
        for k in range(3):
            control.submit(gid, 4 << 20, at_s=(i * 4 + k) * 20e-6)
    return control, gids


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            CongestionReplanner(interval_s=0)
        with pytest.raises(ValueError):
            CongestionReplanner(utilization_threshold=0)
        with pytest.raises(ValueError):
            CongestionReplanner(persistence=0)

    def test_start_requires_binding(self):
        with pytest.raises(RuntimeError):
            CongestionReplanner().start()


class TestReplanning:
    def test_replans_fire_and_stay_invariant_clean(self):
        replanner = CongestionReplanner(
            utilization_threshold=0.3, ecn_threshold=4, persistence=1,
            cooldown_s=400e-6,
        )
        control, _ = loaded_control(replanner)
        control.run()
        assert control.finalize_checks() == []
        assert replanner.replans > 0
        assert control.report().total.completed == 12
        assert any(e["event"] == "replanned" for e in control.events)

    def test_tick_terminates_alongside_other_periodic_work(self):
        """The tick must stop on "no unresolved jobs", not "no pending
        events" — with the obs sampler also self-rescheduling, two tickers
        gating on the event queue would keep each other alive forever."""
        from repro.obs import Observability

        replanner = CongestionReplanner()
        control = ControlPlane(
            LeafSpine(2, 4, 2),
            "peel",
            SimConfig(segment_bytes=16 * KB),
            obs=Observability(sample_interval_s=50e-6),
            replanner=replanner,
        )
        gid = control.create_group("t", "host:l0:0", ["host:l0:1"])
        control.submit(gid, 256 * KB)
        control.run()  # hangs without the unresolved-jobs stop condition
        assert control.sim.pending == 0
        assert replanner.ticks > 0

    def test_persistence_suppresses_transient_bursts(self):
        eager = CongestionReplanner(
            utilization_threshold=0.3, ecn_threshold=4, persistence=1,
            cooldown_s=400e-6,
        )
        control, _ = loaded_control(eager)
        control.run()
        patient = CongestionReplanner(
            utilization_threshold=0.3, ecn_threshold=4, persistence=50,
            cooldown_s=400e-6,
        )
        control2, _ = loaded_control(patient)
        control2.run()
        assert patient.replans < eager.replans

    def test_replanned_trees_avoid_the_masked_links(self):
        replanner = CongestionReplanner(
            utilization_threshold=0.3, ecn_threshold=4, persistence=1,
            cooldown_s=400e-6, max_hot_links=1,
        )
        control, _ = loaded_control(replanner)
        control.run()
        avoided = [
            e for e in control.events if e["event"] == "replanned"
        ]
        assert avoided  # the campaign tripped the watch at least once
        # The planning topology was restored after every mask.
        assert control.env.topo.graph.number_of_edges() == sum(
            1 for _ in LeafSpine(2, 4, 2).graph.edges
        )
