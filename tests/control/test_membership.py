"""Pure membership machinery: graft/prune tree surgery, churn policy,
churn timelines."""

import pytest

from repro.control import (
    ChurnEvent,
    ChurnPolicy,
    ChurnSchedule,
    MembershipError,
    covered_hosts,
    graft_host,
    prune_host,
)
from repro.core import Peel
from repro.steiner import MulticastTree
from repro.topology import LeafSpine


def topo8() -> LeafSpine:
    return LeafSpine(2, 4, 2)


def plan_trees(topo, source, receivers):
    return Peel(topo).plan(source, sorted(receivers)).static_trees


class TestGraft:
    def test_existing_receiver_is_a_noop(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[1], h[2]])
        out, kind = graft_host(topo, trees, h[0], h[1])
        assert kind == "noop"
        assert out is trees

    def test_covered_graft_attaches_under_the_tor(self):
        # host:l1:1's ToR (leaf:1) is already on the tree serving host:l1:0,
        # so the graft is exactly one host-attachment edge (the free case).
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[2]])  # reaches leaf:1
        out, kind = graft_host(topo, trees, h[0], "host:l1:1")
        assert kind == "covered"
        assert "host:l1:1" in covered_hosts(out)
        joined = next(t for t in out if "host:l1:1" in t.parent)
        assert joined.parent["host:l1:1"] == topo.tor_of("host:l1:1")
        # The input list was not mutated.
        assert "host:l1:1" not in covered_hosts(trees)

    def test_branch_graft_merges_a_source_path(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[1]])  # stays inside leaf:0
        out, kind = graft_host(topo, trees, h[0], "host:l3:0")
        assert kind == "branch"
        assert covered_hosts(out) == {h[1], "host:l3:0"}
        # Every grafted edge exists on the fabric.
        for tree in out:
            for child, par in tree.parent.items():
                assert topo.graph.has_edge(par, child)

    def test_graft_source_rejected(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[1]])
        with pytest.raises(MembershipError):
            graft_host(topo, trees, h[0], h[0])

    def test_graft_non_host_rejected(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[1]])
        with pytest.raises(MembershipError):
            graft_host(topo, trees, h[0], "leaf:2")

    def test_graft_unreachable_host_raises(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[1]])
        # Cut every path to host:l3:1 by failing its only attachment.
        topo.fail_link("leaf:3", "host:l3:1")
        with pytest.raises(MembershipError):
            graft_host(topo, trees, h[0], "host:l3:1")


class TestPrune:
    def test_prune_leaf_keeps_other_paths_identical(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[1], h[2], h[4]])
        before = {
            r: next(t for t in trees if r in t.parent).path_from_root(r)
            for r in (h[1], h[4])
        }
        out, changed = prune_host(trees, h[2])
        assert changed
        assert covered_hosts(out) == {h[1], h[4]}
        for r, path in before.items():
            tree = next(t for t in out if r in t.parent)
            assert tree.path_from_root(r) == path

    def test_prune_strips_childless_switch_chain(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[1], h[2]])
        out, changed = prune_host(trees, h[2])  # sole receiver under leaf:1
        assert changed
        nodes = set().union(*(t.nodes for t in out))
        assert "leaf:1" not in nodes  # the chain above it served nobody else

    def test_prune_absent_host_is_a_noop(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[1]])
        out, changed = prune_host(trees, h[5])
        assert not changed
        assert out == list(trees)

    def test_prune_root_rejected(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[1]])
        with pytest.raises(MembershipError):
            prune_host(trees, h[0])

    def test_prune_relay_host_rejected(self):
        tree = MulticastTree(
            "host:l0:0",
            {"host:l0:1": "host:l0:0", "host:l1:0": "host:l0:1"},
        )
        with pytest.raises(MembershipError):
            prune_host([tree], "host:l0:1")

    def test_prune_last_receiver_drops_the_tree(self):
        topo = topo8()
        h = topo.hosts
        trees = plan_trees(topo, h[0], [h[2]])
        out, changed = prune_host(trees, h[2])
        assert changed
        assert out == []


class TestChurnPolicy:
    def test_branch_grafts_trigger_independently_of_size(self):
        policy = ChurnPolicy(max_branch_grafts=1)
        assert policy.needs_full_repeel(1, 2, group_size=100)
        assert not policy.needs_full_repeel(1, 1, group_size=100)

    def test_delta_fraction_scales_with_group_size(self):
        policy = ChurnPolicy(max_delta_fraction=0.5, max_branch_grafts=99)
        assert not policy.needs_full_repeel(2, 0, group_size=4)
        assert policy.needs_full_repeel(3, 0, group_size=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnPolicy(max_delta_fraction=0)
        with pytest.raises(ValueError):
            ChurnPolicy(max_branch_grafts=-1)


class TestChurnTimeline:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(0.0, 0, "rename", host="h")
        with pytest.raises(ValueError):
            ChurnEvent(0.0, 0, "join")  # membership op needs a host
        with pytest.raises(ValueError):
            ChurnEvent(0.0, 0, "submit")  # submit needs message_bytes
        with pytest.raises(ValueError):
            ChurnEvent(-1.0, 0, "join", host="h")

    def test_schedule_sorts_and_round_trips(self, tmp_path):
        schedule = ChurnSchedule(
            (
                ChurnEvent(2e-6, 1, "leave", host="host:l0:0"),
                ChurnEvent(1e-6, 0, "join", host="host:l1:0"),
                ChurnEvent(1e-6, 0, "submit", message_bytes=1024),
            )
        )
        assert [e.at_s for e in schedule] == [1e-6, 1e-6, 2e-6]
        again = ChurnSchedule.from_json(schedule.to_json())
        assert again == schedule
        path = tmp_path / "churn.json"
        schedule.save(path)
        assert ChurnSchedule.load(path) == schedule
        assert len(schedule) == 3
