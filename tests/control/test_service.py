"""ControlPlane service: group lifecycle, mid-flight membership, accounting."""

import pytest

from repro.control import ControlError, ControlPlane
from repro.sim import SimConfig
from repro.topology import LeafSpine

KB = 1024


def control_plane(scheme="peel", **kwargs) -> ControlPlane:
    kwargs.setdefault("check_invariants", True)
    return ControlPlane(
        LeafSpine(2, 4, 2), scheme, SimConfig(segment_bytes=16 * KB), **kwargs
    )


class TestGroupLifecycle:
    def test_protection_is_refused(self):
        with pytest.raises(ControlError):
            control_plane(protection=1)

    def test_unknown_hosts_and_groups_rejected(self):
        control = control_plane()
        with pytest.raises(ControlError):
            control.create_group("t", "host:l9:9")
        with pytest.raises(ControlError):
            control.create_group("t", "host:l0:0", ["nope"])
        with pytest.raises(ControlError):
            control.submit(42, KB)
        with pytest.raises(ControlError):
            control.join(42, "host:l0:1")

    def test_submit_completes_and_retires(self):
        control = control_plane()
        gid = control.create_group(
            "train", "host:l0:0", ["host:l0:1", "host:l1:0"]
        )
        index = control.submit(gid, 256 * KB)
        control.run()
        assert control.finalize_checks() == []
        report = control.report()
        assert report.total.completed == 1
        assert control.groups[gid].active == set()
        kinds = [e["event"] for e in control.events]
        assert kinds == ["group_created", "submitted", "job_done"]
        assert control.events[-1]["job"] == index

    def test_bad_submit_rejected(self):
        control = control_plane()
        gid = control.create_group("t", "host:l0:0", ["host:l0:1"])
        with pytest.raises(ControlError):
            control.submit(gid, 0)


class TestMembership:
    def test_join_reshapes_a_not_yet_launched_job(self):
        control = control_plane()
        gid = control.create_group("t", "host:l0:0", ["host:l0:1"])
        control.submit(gid, 256 * KB, at_s=100e-6)
        control.join(gid, "host:l2:0")  # applies before the arrival fires
        control.run()
        assert control.finalize_checks() == []
        record = control.runtime.records[0]
        receivers = set().union(
            *(t.receivers for t in record.handle.transfers)
        )
        assert "host:l2:0" in receivers
        assert control.counters["joins"] == 1
        assert control.counters["grafts"] == 0  # nothing was in flight

    def test_midflight_graft_backfills_and_epoch_bumps(self):
        control = control_plane()
        gid = control.create_group("t", "host:l0:0", ["host:l0:1", "host:l1:0"])
        control.submit(gid, 1 << 20)
        control.join(gid, "host:l3:1", at_s=30e-6)
        control.run()
        assert control.finalize_checks() == []
        assert control.groups[gid].epoch == 1
        assert control.counters["joins"] == 1
        assert control.counters["grafts"] + control.counters["full_repeels"] == 1
        transfer = control.runtime.records[0].handle.transfers[0]
        assert "host:l3:1" in transfer.finished_hosts

    def test_midflight_prune_stops_waiting_for_the_host(self):
        control = control_plane()
        gid = control.create_group(
            "t", "host:l0:0", ["host:l0:1", "host:l1:0", "host:l2:0"]
        )
        control.submit(gid, 1 << 20)
        control.leave(gid, "host:l2:0", at_s=30e-6)
        control.run()
        assert control.finalize_checks() == []
        assert control.counters["leaves"] == 1
        assert control.counters["prunes"] == 1
        transfer = control.runtime.records[0].handle.transfers[0]
        assert "host:l2:0" not in transfer.receivers
        assert control.report().total.completed == 1

    def test_leave_then_rejoin_same_transfer_is_exactly_once(self):
        """A host that leaves and rejoins one in-flight collective starts
        from scratch: the backfill re-delivers what it saw before leaving,
        and the invariant checker must treat that as fresh, not duplicate."""
        control = control_plane()
        gid = control.create_group("t", "host:l0:0", ["host:l0:1", "host:l1:0"])
        control.submit(gid, 8 << 20)
        control.leave(gid, "host:l1:0", at_s=50e-6)
        control.join(gid, "host:l1:0", at_s=200e-6)
        control.run()
        assert control.finalize_checks() == []
        transfer = control.runtime.records[0].handle.transfers[0]
        assert "host:l1:0" in transfer.finished_hosts

    def test_membership_ops_are_idempotent(self):
        control = control_plane()
        gid = control.create_group("t", "host:l0:0", ["host:l0:1"])
        control.join(gid, "host:l0:1")  # already a member
        control.leave(gid, "host:l3:0")  # never was one
        assert control.counters["joins"] == 0
        assert control.counters["leaves"] == 0
        assert control.groups[gid].epoch == 0

    def test_membership_bump_invalidates_cache_entries(self):
        control = control_plane()
        cache = control.env.plan_cache
        gid = control.create_group("t", "host:l0:0", ["host:l0:1", "host:l1:0"])
        control.submit(gid, 64 * KB)
        control.run()
        assert len(cache) == 1
        # A leave drops the old-shape entry (it names the departed host);
        # a join of an outsider leaves it alone — the entry is still a
        # correct plan for its exact host set and can never alias the new
        # shape, whose key includes the joined host.
        control.join(gid, "host:l2:1")
        assert len(cache) == 1 and cache.invalidations == 0
        control.leave(gid, "host:l1:0")
        assert len(cache) == 0
        assert cache.invalidations == 1


class TestStateAccounting:
    def test_orca_graft_pays_tcam_delta(self):
        control = control_plane(scheme="orca", check_invariants=False)
        gid = control.create_group("t", "host:l0:0", ["host:l0:1"])
        control.submit(gid, 1 << 20)
        control.join(gid, "host:l2:0", at_s=30e-6)
        control.run()
        assert control.counters["graft_rejects"] == 0
        report = control.report()
        assert report.total.completed == 1
        # Departed group released every re-pointed entry again.
        assert all(len(t) == 0 for t in control.runtime.state.tables.values())

    def test_orca_join_shapes_future_submits_only(self):
        """Orca's data path is agent-relayed (no tree transfers registered
        on the handle), so a mid-flight join cannot graft; it still
        reshapes every submit after it."""
        control = control_plane(scheme="orca", check_invariants=False)
        gid = control.create_group("t", "host:l0:0", ["host:l0:1"])
        control.submit(gid, 1 << 20)
        control.join(gid, "host:l2:0", at_s=30e-6)
        control.run()
        assert control.counters["joins"] == 1
        assert control.counters["grafts"] == 0
        second = control.submit(gid, 1 << 20)
        hosts = {
            g.host for g in control.runtime.records[second].job.group.members
        }
        assert "host:l2:0" in hosts

    def test_charge_state_gate_rejects_overflowing_delta(self):
        """The TCAM gate every graft and congestion replan passes through:
        a delta whose fresh entries would overflow a switch is refused and
        the old demand stays installed."""
        control = control_plane(
            scheme="orca", check_invariants=False, tcam_capacity=1
        )
        gid = control.create_group("t", "host:l0:0", ["host:l0:1"])
        control.submit(gid, 1 << 20)
        # A second tenant's group occupies leaf:2's single TCAM slot.
        other = control.create_group("u", "host:l2:0", ["host:l2:1"])
        control.submit(other, 1 << 20)
        control.advance(until=30e-6)
        record = control.runtime.records[0]
        assert record.status == "running"
        from repro.control import graft_host

        trees = control.env.peel().plan("host:l0:0", ["host:l0:1"]).static_trees
        grafted, _ = graft_host(
            control.env.topo, list(trees), "host:l0:0", "host:l2:1"
        )
        # The grafted tree now branches at leaf:2, whose only entry belongs
        # to the other group: the fresh entry cannot fit, the delta is
        # refused, and the old demand stays installed.
        assert not control._charge_state(record, grafted)
        assert control._charge_state(record, list(trees))  # no-delta fits


class TestIntrospection:
    def test_stats_snapshot(self):
        control = control_plane()
        gid = control.create_group("t", "host:l0:0", ["host:l0:1"])
        control.submit(gid, 64 * KB)
        control.run()
        stats = control.stats()
        assert stats["jobs"] == 1 and stats["running"] == 0
        assert stats["groups"][0]["gid"] == gid
        assert stats["counters"]["submits"] == 1

    def test_drain_events_cursor(self):
        control = control_plane()
        control.create_group("t", "host:l0:0", ["host:l0:1"])
        events, cursor = control.drain_events()
        assert [e["event"] for e in events] == ["group_created"]
        again, cursor2 = control.drain_events(cursor)
        assert again == [] and cursor2 == cursor
