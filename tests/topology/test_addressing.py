"""Node naming and parsing round-trips."""

import pytest

from repro.topology import addressing as addr
from repro.topology.addressing import NodeKind


class TestNames:
    def test_core_name(self):
        assert addr.core_name(1, 2) == "core:1:2"

    def test_agg_name(self):
        assert addr.agg_name(3, 0) == "agg:p3:0"

    def test_tor_name(self):
        assert addr.tor_name(0, 7) == "tor:p0:7"

    def test_fattree_host_name(self):
        assert addr.fattree_host_name(2, 1, 3) == "host:p2:t1:3"

    def test_leafspine_names(self):
        assert addr.spine_name(4) == "spine:4"
        assert addr.leaf_name(9) == "leaf:9"
        assert addr.leafspine_host_name(9, 0) == "host:l9:0"


class TestParse:
    def test_parse_core(self):
        parsed = addr.parse("core:1:2")
        assert parsed.kind is NodeKind.CORE
        assert parsed.index == 2

    def test_parse_agg(self):
        parsed = addr.parse("agg:p3:1")
        assert parsed.kind is NodeKind.AGG
        assert parsed.pod == 3
        assert parsed.index == 1

    def test_parse_tor(self):
        parsed = addr.parse("tor:p0:7")
        assert parsed.kind is NodeKind.TOR
        assert parsed.pod == 0
        assert parsed.index == 7

    def test_parse_fattree_host(self):
        parsed = addr.parse("host:p2:t1:3")
        assert parsed.kind is NodeKind.HOST
        assert (parsed.pod, parsed.tor, parsed.index) == (2, 1, 3)

    def test_parse_leafspine_host(self):
        parsed = addr.parse("host:l9:5")
        assert parsed.kind is NodeKind.HOST
        assert parsed.tor == 9
        assert parsed.index == 5

    def test_parse_spine_leaf(self):
        assert addr.parse("spine:4").kind is NodeKind.SPINE
        assert addr.parse("leaf:9").kind is NodeKind.LEAF

    @pytest.mark.parametrize(
        "bad", ["", "gpu:1", "host:1", "tor:0:1", "core:1", "agg:pX:1"]
    )
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            addr.parse(bad)

    def test_roundtrip_all_kinds(self):
        names = [
            addr.core_name(0, 0),
            addr.agg_name(1, 2),
            addr.tor_name(1, 2),
            addr.fattree_host_name(1, 2, 3),
            addr.spine_name(0),
            addr.leaf_name(1),
            addr.leafspine_host_name(1, 0),
        ]
        for name in names:
            assert addr.parse(name).kind is addr.kind_of(name)


class TestTiers:
    def test_kind_of(self):
        assert addr.kind_of("host:p0:t0:0") is NodeKind.HOST
        assert addr.kind_of("spine:3") is NodeKind.SPINE

    def test_tier_rank_ordering(self):
        assert addr.tier_rank("host:p0:t0:0") == 0
        assert addr.tier_rank("tor:p0:0") == 1
        assert addr.tier_rank("leaf:0") == 1
        assert addr.tier_rank("agg:p0:0") == 2
        assert addr.tier_rank("spine:0") == 2
        assert addr.tier_rank("core:0:0") == 3

    def test_address_is_switch(self):
        assert addr.parse("tor:p0:0").is_switch
        assert not addr.parse("host:p0:t0:0").is_switch
