"""Fat-tree structural invariants."""

import pytest

from repro.topology import FatTree, NodeKind
from repro.topology import addressing as addr


class TestConstruction:
    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_counts(self, k):
        ft = FatTree(k)
        half = k // 2
        assert len(ft.hosts) == k * half * half  # k^3/4 at full density
        assert len(ft.nodes_of_kind(NodeKind.TOR)) == k * half
        assert len(ft.nodes_of_kind(NodeKind.AGG)) == k * half
        assert len(ft.nodes_of_kind(NodeKind.CORE)) == half * half

    def test_partial_hosts_per_tor(self):
        ft = FatTree(8, hosts_per_tor=2)
        assert len(ft.hosts) == 8 * 4 * 2

    @pytest.mark.parametrize("k", [0, 3, 5, -2])
    def test_rejects_bad_arity(self, k):
        with pytest.raises(ValueError):
            FatTree(k)

    def test_oversubscribed_rack(self):
        """The paper's §4 fabric: 32 GPU-NIC endpoints per 8-ary ToR."""
        ft = FatTree(8, hosts_per_tor=32)
        assert len(ft.hosts) == 1024
        assert len(ft.hosts_under_tor("tor:p0:0")) == 32

    def test_rejects_zero_hosts_per_tor(self):
        with pytest.raises(ValueError):
            FatTree(4, hosts_per_tor=0)

    def test_link_capacity(self):
        ft = FatTree(4, link_bps=42e9)
        u, v = next(iter(ft.graph.edges))
        assert ft.capacity_bps(u, v) == 42e9


class TestWiring:
    def test_tor_degree(self):
        ft = FatTree(4)
        # Each ToR: k/2 hosts + k/2 aggs.
        for tor in ft.nodes_of_kind(NodeKind.TOR):
            assert ft.graph.degree(tor) == 4

    def test_agg_degree(self):
        ft = FatTree(4)
        # Each agg: k/2 ToRs + k/2 cores.
        for agg in ft.nodes_of_kind(NodeKind.AGG):
            assert ft.graph.degree(agg) == 4

    def test_core_reaches_every_pod_once(self):
        ft = FatTree(8)
        for core in ft.nodes_of_kind(NodeKind.CORE):
            pods = sorted(addr.parse(n).pod for n in ft.graph.neighbors(core))
            assert pods == list(range(8))

    def test_core_group_maps_to_one_agg_index(self):
        ft = FatTree(4)
        for core in ft.nodes_of_kind(NodeKind.CORE):
            group = addr.parse(core).tor  # core name reuses the field
            for agg in ft.graph.neighbors(core):
                assert addr.parse(agg).index == group

    def test_intra_pod_full_mesh(self):
        ft = FatTree(4)
        for pod in range(4):
            for tor in ft.tors_in_pod(pod):
                for agg in ft.aggs_in_pod(pod):
                    assert ft.graph.has_edge(tor, agg)

    def test_host_single_homed(self):
        ft = FatTree(4)
        for host in ft.hosts:
            assert ft.graph.degree(host) == 1


class TestHelpers:
    def test_tor_of(self):
        ft = FatTree(4)
        assert ft.tor_of("host:p1:t0:1") == "tor:p1:0"

    def test_tor_of_rejects_switch(self):
        ft = FatTree(4)
        with pytest.raises(ValueError):
            ft.tor_of("tor:p0:0")

    def test_tor_identifier(self):
        ft = FatTree(8)
        assert ft.tor_identifier("tor:p3:2") == 2

    def test_tor_identifier_rejects_host(self):
        ft = FatTree(4)
        with pytest.raises(ValueError):
            ft.tor_identifier("host:p0:t0:0")

    def test_hosts_under_tor(self):
        ft = FatTree(4)
        hosts = ft.hosts_under_tor("tor:p0:1")
        assert hosts == ["host:p0:t1:0", "host:p0:t1:1"]

    def test_core_agg_links_count(self):
        ft = FatTree(4)
        # (k/2)^2 cores x k pods.
        assert len(ft.core_agg_links()) == 4 * 4

    def test_agg_tor_links_count(self):
        ft = FatTree(4)
        assert len(ft.agg_tor_links()) == 4 * 2 * 2

    def test_pod_of(self):
        ft = FatTree(4)
        assert ft.pod_of("agg:p2:1") == 2
        assert ft.pod_of("core:0:0") is None

    def test_up_down_neighbors(self):
        ft = FatTree(4)
        assert set(ft.up_neighbors("tor:p0:0")) == {"agg:p0:0", "agg:p0:1"}
        assert ft.down_neighbors("host:p0:t0:0") == []
        assert len(ft.down_neighbors("core:0:0")) == 4

    def test_diameter_is_six(self):
        ft = FatTree(4)
        dist = ft.distances_from("host:p0:t0:0")
        assert max(dist.values()) == 6  # host-ToR-agg-core-agg-ToR-host
