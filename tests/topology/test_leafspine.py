"""Leaf-spine structural invariants."""

import pytest

from repro.topology import LeafSpine, NodeKind


class TestConstruction:
    def test_counts(self):
        ls = LeafSpine(16, 48, 2)  # the paper's Fig. 7 fabric
        assert len(ls.spines) == 16
        assert len(ls.leaves) == 48
        assert len(ls.hosts) == 96

    def test_full_bipartite_mesh(self):
        ls = LeafSpine(3, 5, 1)
        for leaf in ls.leaves:
            for spine in ls.spines:
                assert ls.graph.has_edge(leaf, spine)

    def test_spine_leaf_links_count(self):
        ls = LeafSpine(3, 5, 1)
        assert len(ls.spine_leaf_links()) == 15

    @pytest.mark.parametrize("dims", [(0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_rejects_empty_dimensions(self, dims):
        with pytest.raises(ValueError):
            LeafSpine(*dims)

    def test_hosts_under_leaf(self):
        ls = LeafSpine(2, 2, 3)
        assert ls.hosts_under_leaf("leaf:1") == [
            "host:l1:0",
            "host:l1:1",
            "host:l1:2",
        ]

    def test_leaf_identifier(self):
        ls = LeafSpine(2, 4, 1)
        assert ls.leaf_identifier("leaf:3") == 3

    def test_node_kinds(self):
        ls = LeafSpine(2, 2, 2)
        assert len(ls.nodes_of_kind(NodeKind.SPINE)) == 2
        assert len(ls.nodes_of_kind(NodeKind.LEAF)) == 2
        assert not ls.nodes_of_kind(NodeKind.CORE)

    def test_diameter_is_four(self):
        ls = LeafSpine(2, 2, 2)
        dist = ls.distances_from("host:l0:0")
        assert max(dist.values()) == 4  # host-leaf-spine-leaf-host

    def test_is_symmetric_initially(self):
        assert LeafSpine(2, 2, 1).is_symmetric


class TestFailuresInteraction:
    def test_fail_link_records(self):
        ls = LeafSpine(2, 2, 1)
        ls.fail_link("leaf:0", "spine:0")
        assert not ls.is_symmetric
        assert ("leaf:0", "spine:0") in ls.failed_links
        assert not ls.graph.has_edge("leaf:0", "spine:0")

    def test_fail_missing_link_raises(self):
        ls = LeafSpine(2, 2, 1)
        with pytest.raises(ValueError):
            ls.fail_link("leaf:0", "leaf:1")

    def test_copy_is_independent(self):
        ls = LeafSpine(2, 2, 1)
        dup = ls.copy()
        dup.fail_link("leaf:0", "spine:0")
        assert ls.is_symmetric
        assert not dup.is_symmetric
        assert ls.graph.has_edge("leaf:0", "spine:0")
