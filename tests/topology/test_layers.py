"""Hop-layer decomposition (the §2.3 substrate)."""

import pytest

from repro.topology import (
    FatTree,
    LeafSpine,
    farthest_destination_layer,
    hop_layers,
)


class TestHopLayers:
    def test_layer_zero_is_source(self):
        ls = LeafSpine(2, 2, 2)
        layers = hop_layers(ls.graph, "host:l0:0")
        assert layers[0] == {"host:l0:0"}

    def test_leafspine_layer_structure(self):
        ls = LeafSpine(2, 2, 2)
        layers = hop_layers(ls.graph, "host:l0:0")
        assert layers[1] == {"leaf:0"}
        assert layers[2] == {"spine:0", "spine:1", "host:l0:1"}
        assert layers[3] == {"leaf:1"}
        assert layers[4] == {"host:l1:0", "host:l1:1"}

    def test_layers_partition_reachable_nodes(self):
        ft = FatTree(4)
        layers = hop_layers(ft.graph, ft.hosts[0])
        seen = set()
        for layer in layers:
            assert not layer & seen
            seen |= layer
        assert seen == set(ft.graph.nodes)

    def test_every_node_has_lower_layer_neighbor(self):
        """The BFS-parent invariant the greedy peeling relies on."""
        ft = FatTree(4)
        src = ft.hosts[0]
        layers = hop_layers(ft.graph, src)
        for j in range(1, len(layers)):
            for node in layers[j]:
                assert any(
                    v in layers[j - 1] for v in ft.graph.neighbors(node)
                )

    def test_unreachable_nodes_absent(self):
        ls = LeafSpine(1, 2, 1)
        ls.fail_link("leaf:1", "spine:0")
        layers = hop_layers(ls.graph, "host:l0:0")
        flattened = set().union(*layers)
        assert "host:l1:0" not in flattened


class TestFarthestDestination:
    def test_same_rack(self):
        ls = LeafSpine(2, 2, 2)
        assert farthest_destination_layer(ls.graph, "host:l0:0", ["host:l0:1"]) == 2

    def test_cross_rack(self):
        ls = LeafSpine(2, 2, 2)
        assert farthest_destination_layer(ls.graph, "host:l0:0", ["host:l1:0"]) == 4

    def test_mixed_takes_max(self):
        ls = LeafSpine(2, 2, 2)
        got = farthest_destination_layer(
            ls.graph, "host:l0:0", ["host:l0:1", "host:l1:1"]
        )
        assert got == 4

    def test_unreachable_raises(self):
        ls = LeafSpine(1, 2, 1)
        ls.fail_link("leaf:1", "spine:0")
        with pytest.raises(ValueError):
            farthest_destination_layer(ls.graph, "host:l0:0", ["host:l1:0"])
