"""Rail-optimized topology (the §2.1 future-work target)."""

import pytest

from repro.core import layer_peeling_tree
from repro.steiner import exact_steiner_cost, validate_tree
from repro.topology import RailOptimized


class TestConstruction:
    def test_counts(self):
        r = RailOptimized(4, 8, num_spines=2)
        assert len(r.hosts) == 32
        assert len(r.rails) == 4
        assert len(r.switches) == 6

    def test_isolated_rails_without_spines(self):
        r = RailOptimized(3, 4)
        assert len(r.switches) == 3
        # Rails are disconnected planes.
        import networkx as nx

        assert nx.number_connected_components(r.graph) == 3

    def test_rail_wiring(self):
        r = RailOptimized(2, 3, num_spines=1)
        for rail in range(2):
            for server in range(3):
                assert r.graph.has_edge(f"host:l{rail}:{server}", f"leaf:{rail}")

    @pytest.mark.parametrize("dims", [(0, 1), (1, 0)])
    def test_rejects_empty(self, dims):
        with pytest.raises(ValueError):
            RailOptimized(*dims)

    def test_rejects_negative_spines(self):
        with pytest.raises(ValueError):
            RailOptimized(1, 1, num_spines=-1)


class TestAccessors:
    def test_rail_of(self):
        r = RailOptimized(4, 4, num_spines=1)
        assert r.rail_of("host:l2:1") == 2

    def test_rail_of_rejects_switch(self):
        r = RailOptimized(2, 2, num_spines=1)
        with pytest.raises(ValueError):
            r.rail_of("leaf:0")

    def test_server_nics(self):
        r = RailOptimized(3, 4)
        assert r.server_nics(1) == ["host:l0:1", "host:l1:1", "host:l2:1"]

    def test_nics_on_rail(self):
        r = RailOptimized(2, 3)
        assert r.nics_on_rail(1) == ["host:l1:0", "host:l1:1", "host:l1:2"]

    def test_same_rail(self):
        r = RailOptimized(2, 3)
        assert r.same_rail(["host:l0:0", "host:l0:2"])
        assert not r.same_rail(["host:l0:0", "host:l1:0"])

    def test_index_bounds(self):
        r = RailOptimized(2, 2)
        with pytest.raises(ValueError):
            r.server_nics(5)
        with pytest.raises(ValueError):
            r.nics_on_rail(9)


class TestMulticastOnRails:
    def test_single_rail_group_optimal(self):
        """Intra-rail multicast needs only the rail switch."""
        r = RailOptimized(4, 8, num_spines=2)
        src = "host:l1:0"
        dests = [f"host:l1:{s}" for s in range(1, 5)]
        tree = layer_peeling_tree(r, src, dests)
        validate_tree(tree, r.graph, src, dests)
        assert tree.cost == len(dests) + 1
        assert not any(n.startswith("spine") for n in tree.nodes)

    def test_cross_rail_needs_spine(self):
        r = RailOptimized(4, 8, num_spines=2)
        src = "host:l0:0"
        dests = ["host:l2:0", "host:l3:1"]
        tree = layer_peeling_tree(r, src, dests)
        validate_tree(tree, r.graph, src, dests)
        assert any(n.startswith("spine") for n in tree.nodes)

    def test_greedy_matches_exact(self):
        r = RailOptimized(3, 6, num_spines=2)
        src = "host:l0:0"
        dests = ["host:l0:2", "host:l1:3", "host:l2:4", "host:l2:5"]
        greedy = layer_peeling_tree(r, src, dests).cost
        assert greedy == exact_steiner_cost(r.graph, src, dests)

    def test_unreachable_without_spines(self):
        r = RailOptimized(2, 2)
        with pytest.raises(ValueError):
            layer_peeling_tree(r, "host:l0:0", ["host:l1:0"])

    def test_failures_reroute_through_other_spine(self):
        r = RailOptimized(2, 4, num_spines=2)
        r.fail_link("leaf:1", "spine:0")
        tree = layer_peeling_tree(r, "host:l0:0", ["host:l1:0"])
        assert "spine:1" in tree.nodes

    def test_simulated_broadcast_on_rails(self):
        from repro.sim import Network, SimConfig, Transfer

        r = RailOptimized(2, 8, num_spines=2)
        net = Network(r, SimConfig(segment_bytes=65536))
        src = "host:l0:0"
        dests = [f"host:l0:{s}" for s in range(1, 8)] + ["host:l1:0"]
        tree = layer_peeling_tree(r, src, dests)
        done = set()
        t = Transfer(net, "t", src, 2**20, [tree],
                     on_host_done=lambda h, at: done.add(h))
        t.start()
        net.sim.run()
        assert done == set(dests)
