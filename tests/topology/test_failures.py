"""Failure injection: fractions, connectivity preservation, determinism."""

import pytest

from repro.topology import (
    FatTree,
    LeafSpine,
    asymmetric,
    fail_random_uplinks,
    fail_switch,
)


class TestFailRandomUplinks:
    def test_fraction_of_spine_leaf_links(self):
        ls = LeafSpine(16, 48, 2)
        failed = fail_random_uplinks(ls, 0.10, seed=1)
        assert len(failed) == round(0.10 * 16 * 48)
        assert len(ls.failed_links) == len(failed)

    def test_fattree_targets_core_agg(self):
        ft = FatTree(4)
        failed = fail_random_uplinks(ft, 0.25, seed=2)
        for u, v in failed:
            kinds = {u.split(":")[0], v.split(":")[0]}
            assert kinds == {"core", "agg"}

    def test_zero_fraction(self):
        ls = LeafSpine(4, 4, 1)
        assert fail_random_uplinks(ls, 0.0, seed=3) == []
        assert ls.is_symmetric

    def test_hosts_stay_connected(self):
        ls = LeafSpine(2, 8, 2)
        fail_random_uplinks(ls, 0.4, seed=4)
        src = ls.hosts[0]
        assert ls.reachable(src, ls.hosts)

    def test_deterministic_under_seed(self):
        a = LeafSpine(8, 8, 1)
        b = LeafSpine(8, 8, 1)
        assert fail_random_uplinks(a, 0.2, seed=9) == fail_random_uplinks(
            b, 0.2, seed=9
        )

    def test_rejects_bad_fraction(self):
        ls = LeafSpine(2, 2, 1)
        with pytest.raises(ValueError):
            fail_random_uplinks(ls, 1.5)

    def test_rejects_unknown_topology(self):
        from repro.topology.base import Topology
        import networkx as nx

        with pytest.raises(TypeError):
            fail_random_uplinks(Topology(nx.Graph()), 0.1)


class TestAsymmetricCopy:
    def test_original_untouched(self):
        ls = LeafSpine(4, 4, 1)
        bad, failed = asymmetric(ls, 0.25, seed=5)
        assert ls.is_symmetric
        assert not bad.is_symmetric
        assert failed == bad.failed_links

    def test_copy_preserves_dimensions(self):
        ls = LeafSpine(4, 6, 2)
        bad, _ = asymmetric(ls, 0.1, seed=6)
        assert bad.num_spines == 4
        assert bad.num_leaves == 6


class TestFailSwitch:
    def test_removes_all_links(self):
        ls = LeafSpine(4, 4, 1)
        links = fail_switch(ls, "spine:0")
        assert len(links) == 4
        assert ls.graph.degree("spine:0") == 0

    def test_recorded_as_failed(self):
        ls = LeafSpine(4, 4, 1)
        fail_switch(ls, "spine:1")
        assert len(ls.failed_links) == 4
