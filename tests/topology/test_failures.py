"""Failure injection: fractions, connectivity preservation, determinism."""

import pytest

from repro.topology import (
    FatTree,
    LeafSpine,
    asymmetric,
    fail_random_uplinks,
    fail_switch,
)


class TestFailRandomUplinks:
    def test_fraction_of_spine_leaf_links(self):
        ls = LeafSpine(16, 48, 2)
        failed = fail_random_uplinks(ls, 0.10, seed=1)
        assert len(failed) == round(0.10 * 16 * 48)
        assert len(ls.failed_links) == len(failed)

    def test_fattree_targets_core_agg(self):
        ft = FatTree(4)
        failed = fail_random_uplinks(ft, 0.25, seed=2)
        for u, v in failed:
            kinds = {u.split(":")[0], v.split(":")[0]}
            assert kinds == {"core", "agg"}

    def test_zero_fraction(self):
        ls = LeafSpine(4, 4, 1)
        assert fail_random_uplinks(ls, 0.0, seed=3) == []
        assert ls.is_symmetric

    def test_hosts_stay_connected(self):
        ls = LeafSpine(2, 8, 2)
        fail_random_uplinks(ls, 0.4, seed=4)
        src = ls.hosts[0]
        assert ls.reachable(src, ls.hosts)

    def test_deterministic_under_seed(self):
        a = LeafSpine(8, 8, 1)
        b = LeafSpine(8, 8, 1)
        assert fail_random_uplinks(a, 0.2, seed=9) == fail_random_uplinks(
            b, 0.2, seed=9
        )

    def test_rejects_bad_fraction(self):
        ls = LeafSpine(2, 2, 1)
        with pytest.raises(ValueError):
            fail_random_uplinks(ls, 1.5)

    def test_rejects_unknown_topology(self):
        from repro.topology.base import Topology
        import networkx as nx

        with pytest.raises(TypeError):
            fail_random_uplinks(Topology(nx.Graph()), 0.1)


class TestAsymmetricCopy:
    def test_original_untouched(self):
        ls = LeafSpine(4, 4, 1)
        bad, failed = asymmetric(ls, 0.25, seed=5)
        assert ls.is_symmetric
        assert not bad.is_symmetric
        assert failed == bad.failed_links

    def test_copy_preserves_dimensions(self):
        ls = LeafSpine(4, 6, 2)
        bad, _ = asymmetric(ls, 0.1, seed=6)
        assert bad.num_spines == 4
        assert bad.num_leaves == 6


class TestFailSwitch:
    def test_removes_all_links(self):
        ls = LeafSpine(4, 4, 1)
        links = fail_switch(ls, "spine:0")
        assert len(links) == 4
        assert ls.graph.degree("spine:0") == 0

    def test_recorded_as_failed(self):
        ls = LeafSpine(4, 4, 1)
        fail_switch(ls, "spine:1")
        assert len(ls.failed_links) == 4

    def test_dor_maintenance_fails_every_link(self):
        """DoR-style drain: *all* of the switch's links go down at once,
        matching the graph's original adjacency exactly."""
        ft = FatTree(4)
        switch = "agg:p0:0"
        neighbors = set(ft.graph.neighbors(switch))
        links = fail_switch(ft, switch)
        assert {v for _u, v in links} == neighbors
        assert ft.graph.degree(switch) == 0
        assert len(ft.failed_links) == len(neighbors)

    def test_leaf_drain_strands_only_its_hosts(self):
        ls = LeafSpine(2, 4, 2)
        stranded = [h for h in ls.hosts if ls.tor_of(h) == "leaf:0"]
        fail_switch(ls, "leaf:0")
        survivor = next(h for h in ls.hosts if h not in stranded)
        reach = ls.distances_from(survivor)
        assert all(h not in reach for h in stranded)
        assert all(h in reach for h in ls.hosts if h not in stranded)


class TestConnectivityPreservation:
    @pytest.mark.parametrize("fraction", [0.5, 0.8, 1.0])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_never_strands_a_host_leafspine(self, fraction, seed):
        """Even asking for 100% failures must leave every host reachable:
        draws that would disconnect a host are skipped, not applied."""
        ls = LeafSpine(2, 8, 2)
        fail_random_uplinks(ls, fraction, seed=seed)
        assert ls.reachable(ls.hosts[0], ls.hosts)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_never_strands_a_host_fattree(self, seed):
        ft = FatTree(4)
        fail_random_uplinks(ft, 1.0, seed=seed)
        assert ft.reachable(ft.hosts[0], ft.hosts)

    def test_full_fraction_fails_fewer_than_all(self):
        ls = LeafSpine(2, 4, 1)
        failed = fail_random_uplinks(ls, 1.0, seed=7)
        assert 0 < len(failed) < 2 * 4  # connectivity made it stop short

    def test_fraction_one_on_single_spine_keeps_spanning_tree(self):
        # One spine: every leaf must keep its only uplink.
        ls = LeafSpine(1, 4, 1)
        failed = fail_random_uplinks(ls, 1.0, seed=0)
        assert failed == []
        assert ls.is_symmetric
