"""Bin-packed job placement."""

import random

import pytest

from repro.topology import FatTree, LeafSpine
from repro.workloads import locality_ordered_hosts, place_job


class TestLocalityOrder:
    def test_rack_adjacency(self):
        ft = FatTree(4)
        hosts = locality_ordered_hosts(ft)
        assert hosts[0] == "host:p0:t0:0"
        assert hosts[1] == "host:p0:t0:1"
        # Hosts of the same rack are consecutive.
        assert hosts[2] == "host:p0:t1:0"

    def test_covers_all_hosts(self):
        ls = LeafSpine(2, 4, 3)
        assert sorted(locality_ordered_hosts(ls)) == sorted(ls.hosts)


class TestPlaceJob:
    def test_gpu_count(self):
        ft = FatTree(8, hosts_per_tor=4)
        group = place_job(ft, 37, gpus_per_host=8, rng=random.Random(0))
        assert group.size == 37

    def test_bin_packing_fills_hosts(self):
        ft = FatTree(8, hosts_per_tor=4)
        group = place_job(ft, 32, gpus_per_host=8, rng=random.Random(1))
        assert len(group.hosts) == 4  # 32/8

    def test_contiguity(self):
        """Chosen hosts form a contiguous run in locality order."""
        ft = FatTree(8, hosts_per_tor=4)
        ordered = locality_ordered_hosts(ft)
        group = place_job(ft, 64, gpus_per_host=8, rng=random.Random(2))
        indices = sorted(ordered.index(h) for h in group.hosts)
        assert indices == list(range(indices[0], indices[0] + len(indices)))

    def test_source_is_first_gpu(self):
        ft = FatTree(4)
        group = place_job(ft, 6, gpus_per_host=2, rng=random.Random(3))
        assert group.source == group.members[0]

    def test_deterministic_with_seed(self):
        ft = FatTree(8, hosts_per_tor=4)
        a = place_job(ft, 16, rng=random.Random(9))
        b = place_job(ft, 16, rng=random.Random(9))
        assert a == b

    def test_fragmentation_scatters(self):
        ft = FatTree(8, hosts_per_tor=4)
        ordered = locality_ordered_hosts(ft)
        frag = place_job(ft, 64, gpus_per_host=8, rng=random.Random(4),
                         fragmentation=1.0)
        indices = sorted(ordered.index(h) for h in frag.hosts)
        spread = indices[-1] - indices[0]
        assert spread > len(indices)  # no longer contiguous

    def test_too_large_job_rejected(self):
        ls = LeafSpine(2, 2, 2)
        with pytest.raises(ValueError):
            place_job(ls, 1000, gpus_per_host=8)

    @pytest.mark.parametrize("bad", [0, -5])
    def test_rejects_non_positive_gpus(self, bad):
        with pytest.raises(ValueError):
            place_job(LeafSpine(2, 2, 2), bad)

    def test_rejects_bad_fragmentation(self):
        with pytest.raises(ValueError):
            place_job(LeafSpine(2, 2, 2), 2, fragmentation=1.5)
