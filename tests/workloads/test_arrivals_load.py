"""Poisson arrivals and offered-load calibration."""

import random

import pytest

from repro.topology import FatTree
from repro.workloads import (
    arrival_rate_for_load,
    fixed_count_arrivals,
    generate_jobs,
    offered_load,
    poisson_arrival_times,
)


class TestPoisson:
    def test_rate_matches_count(self):
        rng = random.Random(0)
        times = poisson_arrival_times(1000.0, 10.0, rng)
        assert 9000 < len(times) < 11000

    def test_sorted_and_within_horizon(self):
        times = poisson_arrival_times(50.0, 2.0, random.Random(1))
        assert times == sorted(times)
        assert all(0 <= t < 2.0 for t in times)

    def test_exponential_gaps(self):
        times = poisson_arrival_times(100.0, 50.0, random.Random(2))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(0.01, rel=0.1)

    @pytest.mark.parametrize("rate,dur", [(0, 1), (-1, 1), (1, 0)])
    def test_rejects_bad_args(self, rate, dur):
        with pytest.raises(ValueError):
            poisson_arrival_times(rate, dur)

    def test_fixed_count(self):
        times = fixed_count_arrivals(10.0, 25, random.Random(3))
        assert len(times) == 25
        assert times == sorted(times)

    def test_fixed_count_zero(self):
        assert fixed_count_arrivals(10.0, 0) == []


class TestOfferedLoad:
    def test_roundtrip(self):
        rate = arrival_rate_for_load(0.3, 8 * 2**20, 7, 96, 100e9)
        back = offered_load(rate, 8 * 2**20, 7, 96, 100e9)
        assert back == pytest.approx(0.3)

    def test_bigger_messages_need_lower_rate(self):
        small = arrival_rate_for_load(0.3, 2**20, 7, 96, 100e9)
        big = arrival_rate_for_load(0.3, 64 * 2**20, 7, 96, 100e9)
        assert big < small

    def test_rejects_bad_load(self):
        with pytest.raises(ValueError):
            arrival_rate_for_load(0, 2**20, 1, 1, 1e9)

    def test_rejects_bad_message(self):
        with pytest.raises(ValueError):
            offered_load(1.0, 0, 1, 1, 1e9)


class TestGenerateJobs:
    def test_job_count_and_shape(self):
        ft = FatTree(8, hosts_per_tor=4)
        jobs = generate_jobs(ft, 12, num_gpus=64, message_bytes=2**20, seed=0)
        assert len(jobs) == 12
        for job in jobs:
            assert job.group.size == 64
            assert job.message_bytes == 2**20
        times = [j.arrival_s for j in jobs]
        assert times == sorted(times)

    def test_reproducible(self):
        ft = FatTree(8, hosts_per_tor=4)
        a = generate_jobs(ft, 5, 32, 2**20, seed=42)
        b = generate_jobs(ft, 5, 32, 2**20, seed=42)
        assert a == b

    def test_seed_changes_workload(self):
        ft = FatTree(8, hosts_per_tor=4)
        a = generate_jobs(ft, 5, 32, 2**20, seed=1)
        b = generate_jobs(ft, 5, 32, 2**20, seed=2)
        assert a != b

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            generate_jobs(FatTree(4), 0, 4, 2**20)
