"""Dynamic fault injection: schedules, JSON, and mid-collective recovery."""

import pytest

from repro.collectives import Gpu, Group
from repro.core import Peel
from repro.api import ScenarioSpec, run
from repro.faults import (
    DROP,
    LINK_DOWN,
    FaultEvent,
    FaultSchedule,
)
from repro.topology import LeafSpine
from repro.workloads import CollectiveJob

MB = 2**20


def make_job(topo, n=8, message=2 * MB):
    members = tuple(Gpu(h, 0) for h in topo.hosts[:n])
    return CollectiveJob(0.0, Group(members[0], members), message)


def spine_link_in_plan(topo, job):
    """A spine-leaf link the PEEL plan actually sends copies over."""
    source = job.group.source.host
    for tree in Peel(topo).plan(source, job.group.receiver_hosts).static_trees:
        for child, parent in tree.parent.items():
            if parent is not None and parent.startswith("spine"):
                return parent, child
    raise AssertionError("plan uses no spine link")


def run_scenario(topo, scheme, jobs, fault_schedule=None,
                 check_invariants=False):
    return run(ScenarioSpec(
        topology=topo, scheme=scheme, jobs=tuple(jobs),
        fault_schedule=fault_schedule, check_invariants=check_invariants,
    ))


def clean_cct(topo, job, scheme="peel"):
    return run_scenario(topo, scheme, [job]).stats.mean_s


class TestFaultEvent:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEvent(0.0, "meteor_strike", ("spine:0", "leaf:0"))

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, LINK_DOWN, ("spine:0", "leaf:0"))

    def test_link_actions_need_two_targets(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, LINK_DOWN, ("spine:0",))

    def test_switch_actions_need_one_target(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "switch_down", ("spine:0", "leaf:0"))

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, DROP, ("spine:0", "leaf:0"), count=0)

    def test_dict_roundtrip(self):
        event = FaultEvent(2e-3, DROP, ("leaf:0", "spine:1"), count=3)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_from_dict_accepts_at_s(self):
        event = FaultEvent.from_dict(
            {"at_s": 0.5, "action": "link_down", "link": ["spine:0", "leaf:0"]}
        )
        assert event.at_s == 0.5

    def test_from_dict_requires_a_time(self):
        with pytest.raises(ValueError, match="at_s or at_ms"):
            FaultEvent.from_dict(
                {"action": "link_down", "link": ["spine:0", "leaf:0"]}
            )


class TestFaultSchedule:
    def test_events_kept_sorted(self):
        sched = (
            FaultSchedule()
            .link_up("spine:0", "leaf:0", at_s=5e-3)
            .link_down("spine:0", "leaf:0", at_s=1e-3)
        )
        assert [e.action for e in sched] == ["link_down", "link_up"]

    def test_flap_must_come_back_up_later(self):
        with pytest.raises(ValueError):
            FaultSchedule().link_flap(
                "spine:0", "leaf:0", down_at_s=2e-3, up_at_s=1e-3
            )

    def test_json_roundtrip(self):
        sched = (
            FaultSchedule()
            .link_flap("spine:0", "leaf:1", down_at_s=1e-3, up_at_s=4e-3)
            .switch_drain("spine:1", at_s=2e-3)
            .drop_segments("leaf:0", "spine:0", at_s=3e-3, count=2)
        )
        assert FaultSchedule.from_json(sched.to_json()).events == sched.events

    def test_save_load(self, tmp_path):
        path = tmp_path / "faults.json"
        sched = FaultSchedule().link_down("spine:0", "leaf:0", at_s=1e-3)
        sched.save(path)
        assert FaultSchedule.load(path).events == sched.events

    def test_json_must_be_a_list(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_json('{"action": "link_down"}')


class TestInjectorValidation:
    def test_unknown_link_rejected_up_front(self):
        topo = LeafSpine(2, 2, 1)
        sched = FaultSchedule().link_down("spine:0", "leaf:99", at_s=1e-3)
        with pytest.raises(ValueError, match="no such link"):
            run_scenario(
                topo, "peel", [make_job(topo, n=4)], fault_schedule=sched
            )

    def test_unknown_switch_rejected_up_front(self):
        topo = LeafSpine(2, 2, 1)
        sched = FaultSchedule().switch_drain("spine:42", at_s=1e-3)
        with pytest.raises(ValueError, match="unknown switch"):
            run_scenario(
                topo, "peel", [make_job(topo, n=4)], fault_schedule=sched
            )


class TestMidstreamRecovery:
    @pytest.mark.parametrize("scheme", ["peel", "optimal"])
    def test_link_flap_recovers_with_replan(self, scheme):
        topo = LeafSpine(2, 4, 2)
        job = make_job(topo)
        cct = clean_cct(topo, job, scheme)
        link = spine_link_in_plan(topo, job)
        sched = FaultSchedule().link_flap(
            *link, down_at_s=0.4 * cct, up_at_s=3.0 * cct
        )
        result = run_scenario(
            topo, scheme, [job], fault_schedule=sched, check_invariants=True
        )
        assert result.invariant_violations == []
        assert result.failure_drops > 0  # the fault actually bit
        assert len(result.repeels) == 1
        assert result.repeels[0][2] == link
        assert topo.is_symmetric  # caller's topology untouched

    def test_permanent_link_down_still_completes(self):
        topo = LeafSpine(2, 4, 2)
        job = make_job(topo)
        cct = clean_cct(topo, job)
        link = spine_link_in_plan(topo, job)
        sched = FaultSchedule().link_down(*link, at_s=0.4 * cct)
        result = run_scenario(
            topo, "peel", [job], fault_schedule=sched, check_invariants=True
        )
        assert result.invariant_violations == []
        assert result.stats.mean_s >= cct  # recovery is not free

    def test_transient_drops_repaired(self):
        topo = LeafSpine(2, 4, 2)
        job = make_job(topo)
        cct = clean_cct(topo, job)
        link = spine_link_in_plan(topo, job)
        sched = FaultSchedule().drop_segments(*link, at_s=0.3 * cct, count=2)
        result = run_scenario(
            topo, "peel", [job], fault_schedule=sched, check_invariants=True
        )
        assert result.invariant_violations == []
        assert result.failure_drops == 2
        assert result.repeels == []  # transient loss repairs, no re-plan

    def test_spine_drain_and_restore(self):
        topo = LeafSpine(2, 4, 2)
        job = make_job(topo)
        cct = clean_cct(topo, job)
        link = spine_link_in_plan(topo, job)
        spine = link[0]
        sched = (
            FaultSchedule()
            .switch_drain(spine, at_s=0.4 * cct)
            .switch_restore(spine, at_s=3.0 * cct)
        )
        result = run_scenario(
            topo, "peel", [job], fault_schedule=sched, check_invariants=True
        )
        assert result.invariant_violations == []
        assert result.repeels  # losing a whole spine forces a re-plan

    def test_fault_after_completion_is_harmless(self):
        topo = LeafSpine(2, 4, 2)
        job = make_job(topo)
        cct = clean_cct(topo, job)
        link = spine_link_in_plan(topo, job)
        sched = FaultSchedule().link_down(*link, at_s=10.0 * cct)
        result = run_scenario(
            topo, "peel", [job], fault_schedule=sched, check_invariants=True
        )
        assert result.invariant_violations == []
        assert result.repeels == []


class TestRestoreLink:
    def test_restore_reinstates_capacity(self):
        topo = LeafSpine(2, 2, 1)
        cap = topo.capacity_bps("spine:0", "leaf:0")
        topo.fail_link("spine:0", "leaf:0")
        assert not topo.is_symmetric
        topo.restore_link("leaf:0", "spine:0")  # either orientation
        assert topo.is_symmetric
        assert topo.capacity_bps("spine:0", "leaf:0") == cap

    def test_restore_unfailed_link_raises(self):
        topo = LeafSpine(2, 2, 1)
        with pytest.raises(ValueError, match="not failed"):
            topo.restore_link("spine:0", "leaf:0")
