"""Tests for the multi-tenant serving runtime (repro.serve)."""
