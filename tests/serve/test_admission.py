"""Admission policies: ADMIT / QUEUE / REJECT decisions in isolation."""

import pytest

from repro.experiments.runner import segment_bytes_for
from repro.serve import (
    CompositeAdmission,
    Decision,
    FifoAdmission,
    LinkLoadAdmission,
    ServeRuntime,
    TcamAdmission,
)
from repro.sim import SimConfig
from repro.topology import FatTree
from repro.workloads import generate_jobs

KB = 1024
MESSAGE = 64 * KB


def make_runtime(scheme: str, tcam_capacity: int = 8) -> ServeRuntime:
    return ServeRuntime(
        FatTree(4, hosts_per_tor=2),
        scheme,
        SimConfig(segment_bytes=segment_bytes_for(MESSAGE)),
        tcam_capacity=tcam_capacity,
    )


def one_record(runtime: ServeRuntime, num_gpus: int = 8):
    job = generate_jobs(
        runtime.env.topo, 1, num_gpus, MESSAGE, gpus_per_host=1, seed=2
    )[0]
    return runtime.submit(job)


class TestFifo:
    def test_always_admits(self):
        runtime = make_runtime("orca", tcam_capacity=1)
        record = one_record(runtime)
        assert FifoAdmission().decide(record, runtime) is Decision.ADMIT


class TestTcam:
    def test_stateless_scheme_always_admits(self):
        runtime = make_runtime("peel", tcam_capacity=1)
        record = one_record(runtime)
        assert runtime.demand_for(record) == {}
        assert TcamAdmission().decide(record, runtime) is Decision.ADMIT

    def test_admits_when_entries_fit(self):
        runtime = make_runtime("orca")
        record = one_record(runtime)
        assert TcamAdmission().decide(record, runtime) is Decision.ADMIT

    def test_queues_when_tables_are_full(self):
        runtime = make_runtime("orca", tcam_capacity=1)
        record = one_record(runtime)
        blockers = {
            switch: [("blocker",)] for switch in runtime.demand_for(record)
        }
        runtime.state.install_group("blocker", blockers)
        assert TcamAdmission().decide(record, runtime) is Decision.QUEUE

    def test_rejects_the_standalone_infeasible(self):
        """A demand that cannot fit even an empty fabric would deadlock the
        FIFO head forever; it is turned away instead."""
        runtime = make_runtime("orca", tcam_capacity=1)
        record = one_record(runtime)
        record._demand = {"agg:p0:0": [("a",), ("b,")]}  # 2 entries, cap 1
        assert TcamAdmission().decide(record, runtime) is Decision.REJECT


class TestLinkLoad:
    def test_admits_on_an_idle_fabric(self):
        runtime = make_runtime("peel")
        record = one_record(runtime)
        policy = LinkLoadAdmission(max_outstanding_bytes=4 * MESSAGE)
        assert policy.decide(record, runtime) is Decision.ADMIT

    def test_queues_when_a_route_link_is_loaded(self):
        runtime = make_runtime("peel")
        record = one_record(runtime)
        policy = LinkLoadAdmission(max_outstanding_bytes=4 * MESSAGE)
        edge = runtime.route_edges_for(record)[0]
        runtime.link_outstanding[edge] = 4 * MESSAGE
        assert policy.decide(record, runtime) is Decision.QUEUE

    def test_rejects_a_message_bigger_than_the_budget(self):
        runtime = make_runtime("peel")
        record = one_record(runtime)
        policy = LinkLoadAdmission(max_outstanding_bytes=MESSAGE // 2)
        assert policy.decide(record, runtime) is Decision.REJECT

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            LinkLoadAdmission(max_outstanding_bytes=0)


class _Fixed:
    def __init__(self, decision: Decision) -> None:
        self.decision = decision
        self.name = f"fixed-{decision.value}"

    def decide(self, record, runtime) -> Decision:
        return self.decision


class TestComposite:
    def test_most_restrictive_verdict_wins(self):
        runtime = make_runtime("peel")
        record = one_record(runtime)
        admit, queue, reject = (
            _Fixed(Decision.ADMIT), _Fixed(Decision.QUEUE), _Fixed(Decision.REJECT)
        )
        assert CompositeAdmission(admit).decide(record, runtime) is Decision.ADMIT
        assert (
            CompositeAdmission(admit, queue).decide(record, runtime)
            is Decision.QUEUE
        )
        assert (
            CompositeAdmission(queue, reject, admit).decide(record, runtime)
            is Decision.REJECT
        )

    def test_requires_at_least_one_policy(self):
        with pytest.raises(ValueError):
            CompositeAdmission()

    def test_name_concatenates(self):
        policy = CompositeAdmission(TcamAdmission(), FifoAdmission())
        assert policy.name == "tcam+fifo"
