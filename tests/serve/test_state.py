"""FabricState: refcounted TCAM entries and per-scheme state policies."""

import pytest

from repro.serve import (
    FabricState,
    IpMulticastStatePolicy,
    OrcaStatePolicy,
    PeelStatePolicy,
    policy_for,
    tree_switch_fanouts,
)

SW = "agg:p0:0"


class TestFabricState:
    def test_shared_entries_are_refcounted(self):
        state = FabricState(capacity=4)
        key = ("subset", frozenset({"tor:p0:0"}))
        state.install_group("a", {SW: [key]})
        state.install_group("b", {SW: [key]})
        assert len(state.table(SW)) == 1
        state.remove_group("a")
        assert len(state.table(SW)) == 1  # still referenced by "b"
        state.remove_group("b")
        assert len(state.table(SW)) == 0
        # One physical install + one physical remove, despite two groups.
        assert state.total_updates == 2

    def test_new_entries_ignores_already_referenced(self):
        state = FabricState(capacity=4)
        state.install_group("a", {SW: [("x",)]})
        assert state.new_entries({SW: [("x",)], "agg:p0:1": [("x",)]}) == {
            "agg:p0:1": 1
        }

    def test_fits_and_feasible(self):
        state = FabricState(capacity=1)
        state.install_group("a", {SW: [("x",)]})
        assert not state.fits({SW: [("y",)]})
        assert state.feasible({SW: [("y",)]})  # would fit an empty fabric
        assert not state.feasible({SW: [("y",), ("z",)]})

    def test_double_install_rejected(self):
        state = FabricState(capacity=4)
        state.install_group("a", {SW: [("x",)]})
        with pytest.raises(ValueError):
            state.install_group("a", {SW: [("y",)]})

    def test_remove_unknown_group_is_noop(self):
        FabricState(capacity=4).remove_group("ghost")

    def test_peak_tracks_concurrency_not_total(self):
        state = FabricState(capacity=16)
        for i in range(3):
            state.install_group(i, {SW: [("g", i)]})
        for i in range(3):
            state.remove_group(i)
        assert state.peak_entries_per_switch == 3
        assert state.total_updates == 6

    def test_reset_counters_keeps_entries(self):
        state = FabricState(capacity=4)
        state.install_group("boot", {SW: [("static",)]})
        state.reset_counters()
        assert state.total_updates == 0
        assert len(state.table(SW)) == 1


class TestUpdateGroup:
    """Membership-delta re-pointing: the control plane's TCAM accounting."""

    def test_applies_only_the_delta(self):
        state = FabricState(capacity=4)
        state.install_group("g", {SW: [("a",), ("b",)]})
        updates = state.total_updates
        assert state.update_group("g", {SW: [("b",), ("c",)]})
        # ("b",) survived untouched: one install for ("c",), one remove
        # for ("a",) — not a full remove+reinstall.
        assert state.total_updates == updates + 2
        assert len(state.table(SW)) == 2

    def test_reject_leaves_old_demand_installed(self):
        state = FabricState(capacity=2)
        state.install_group("g", {SW: [("a",), ("b",)]})
        assert not state.update_group("g", {SW: [("a",), ("b",), ("c",)]})
        assert len(state.table(SW)) == 2  # untouched

    def test_shared_entries_survive_the_other_group(self):
        state = FabricState(capacity=4)
        key = ("shared",)
        state.install_group("g", {SW: [key]})
        state.install_group("h", {SW: [key]})
        assert state.update_group("g", {SW: [("solo",)]})
        assert key in state.table(SW)  # "h" still references it

    def test_unknown_group_installs_fresh(self):
        state = FabricState(capacity=1)
        assert state.update_group("g", {SW: [("a",)]})
        assert not state.update_group("h", {SW: [("b",)]})


class TestPolicies:
    FANOUTS = [
        ("agg:p0:0", frozenset({"tor:p0:0", "tor:p0:1"})),
        ("tor:p0:0", frozenset({"host:p0:t0:0"})),
    ]

    def test_peel_demands_nothing(self):
        assert PeelStatePolicy().demand(7, self.FANOUTS) == {}
        assert not PeelStatePolicy().per_group

    def test_orca_demands_one_entry_per_tree_switch(self):
        demand = OrcaStatePolicy().demand(7, self.FANOUTS)
        assert demand == {
            "agg:p0:0": [("group", 7)],
            "tor:p0:0": [("group", 7)],
        }

    def test_ip_multicast_keys_on_the_subset(self):
        demand = IpMulticastStatePolicy().demand(7, self.FANOUTS)
        # Two groups with the same fanout share these keys (no group id).
        assert demand == IpMulticastStatePolicy().demand(8, self.FANOUTS)

    def test_policy_for_names(self):
        assert policy_for("peel").name == "peel"
        assert policy_for("peel+cores").per_group is False
        assert policy_for("orca").name == "orca"
        assert policy_for("ip-multicast").name == "ip-multicast"
        ring = policy_for("ring")
        assert ring.name == "ring" and ring.per_group is False

    def test_tree_switch_fanouts_skips_hosts(self):
        from repro.core import optimal_symmetric_tree
        from repro.topology import FatTree

        topo = FatTree(4, hosts_per_tor=2)
        hosts = sorted(topo.hosts)
        tree = optimal_symmetric_tree(topo, hosts[0], hosts[1:5])
        fanouts = tree_switch_fanouts(tree)
        assert fanouts, "a spanning tree must branch somewhere"
        for switch, children in fanouts:
            assert not switch.startswith("host")
            assert children
