"""PlanCache: byte-identical plans, LRU eviction, fault-driven invalidation."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Peel
from repro.serve import PlanCache
from repro.topology import FatTree


def small_topo() -> FatTree:
    return FatTree(4, hosts_per_tor=2)


HOSTS = sorted(small_topo().hosts)

group_indices = st.tuples(
    st.integers(min_value=0, max_value=len(HOSTS) - 1),
    st.sets(
        st.integers(min_value=0, max_value=len(HOSTS) - 1), min_size=1, max_size=6
    ),
)
#: ((source index, receiver indices), flip-a-link-before-this-lookup?)
op_lists = st.lists(
    st.tuples(group_indices, st.booleans()), min_size=1, max_size=12
)


def canonical_plan(planner: Peel, source: str, receivers: list[str]):
    return planner.plan(source, sorted(set(receivers) - {source}))


def core_link(topo) -> tuple[str, str]:
    core = sorted(n for n in topo.graph.nodes if n.startswith("core"))[0]
    return core, sorted(topo.graph.neighbors(core))[0]


class TestByteIdenticalProperty:
    @given(op_lists)
    @settings(max_examples=40, deadline=None)
    def test_cached_equals_fresh_across_fault_epochs(self, ops):
        """Whatever mix of repeats, orderings and fault epochs a stream
        produces, a cache lookup is byte-identical to a fresh peel of the
        same group on the *current* topology — and every topology change
        bumps the epoch and empties the cache."""
        topo = small_topo()
        planner = Peel(topo)
        cache = PlanCache()
        u, v = core_link(topo)
        down = False
        for (src_i, recv_is), flip in ops:
            if flip:  # the same observer events a FaultInjector delivers
                epoch_before = cache.epoch
                if down:
                    topo.restore_link(u, v)
                    cache.on_link_up(u, v)
                else:
                    topo.fail_link(u, v)
                    cache.on_link_down(u, v)
                down = not down
                assert cache.epoch == epoch_before + 1
                assert len(cache) == 0
            source = HOSTS[src_i]
            receivers = [HOSTS[i] for i in recv_is if HOSTS[i] != source]
            if not receivers:
                continue
            want = pickle.dumps(canonical_plan(planner, source, receivers))
            assert pickle.dumps(cache.get(planner, source, receivers)) == want
            # A reordered lookup of the same set hits and stays identical.
            hits_before = cache.hits
            again = cache.get(planner, source, list(reversed(receivers)))
            assert cache.hits == hits_before + 1
            assert pickle.dumps(again) == want

    @given(group_indices)
    @settings(max_examples=25, deadline=None)
    def test_invalidation_forces_replan_on_degraded_topology(self, group):
        """After a link failure the cache must not serve the pre-fault plan:
        the post-invalidation lookup re-peels on the degraded graph."""
        src_i, recv_is = group
        topo = small_topo()
        planner = Peel(topo)
        cache = PlanCache()
        source = HOSTS[src_i]
        receivers = [HOSTS[i] for i in recv_is if HOSTS[i] != source]
        if not receivers:
            return
        cache.get(planner, source, receivers)
        u, v = core_link(topo)
        topo.fail_link(u, v)
        cache.on_link_down(u, v)
        got = cache.get(planner, source, receivers)
        assert pickle.dumps(got) == pickle.dumps(
            canonical_plan(planner, source, receivers)
        )
        topo.restore_link(u, v)


class TestCacheMechanics:
    def test_hit_and_miss_counters(self):
        topo = small_topo()
        planner = Peel(topo)
        cache = PlanCache()
        cache.get(planner, HOSTS[0], HOSTS[1:4])
        cache.get(planner, HOSTS[0], HOSTS[1:4])
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        topo = small_topo()
        planner = Peel(topo)
        cache = PlanCache(maxsize=2)
        cache.get(planner, HOSTS[0], [HOSTS[1]])
        cache.get(planner, HOSTS[0], [HOSTS[2]])
        cache.get(planner, HOSTS[0], [HOSTS[1]])  # refresh the oldest
        cache.get(planner, HOSTS[0], [HOSTS[3]])  # evicts the [2] entry
        assert cache.evictions == 1
        hits = cache.hits
        cache.get(planner, HOSTS[0], [HOSTS[1]])
        assert cache.hits == hits + 1  # survived: it was refreshed
        cache.get(planner, HOSTS[0], [HOSTS[2]])
        assert cache.misses == 4  # the evicted entry had to re-peel

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_network_events_reach_an_attached_cache(self):
        """The real observer path: Network.set_link_down/up fan out to the
        cache exactly like any other FabricObserver."""
        from repro.collectives import CollectiveEnv

        topo = small_topo()
        env = CollectiveEnv(topo)
        cache = PlanCache().attach(env.network)
        cache.get(Peel(topo), HOSTS[0], HOSTS[1:3])
        u, v = core_link(topo)
        env.network.set_link_down(u, v)
        assert cache.invalidations == 1 and len(cache) == 0
        env.network.set_link_up(u, v)
        assert cache.invalidations == 2

    def test_epoch_is_part_of_the_key(self):
        topo = small_topo()
        planner = Peel(topo)
        cache = PlanCache()
        key_before = cache.key_for(planner, HOSTS[0], [HOSTS[1]])
        cache.invalidate()
        key_after = cache.key_for(planner, HOSTS[0], [HOSTS[1]])
        assert key_before != key_after
        assert key_before.hosts == key_after.hosts


class TestHostInvalidation:
    """Membership-epoch invalidation: targeted, no stale hits, no aliasing."""

    def test_drops_only_intersecting_entries(self):
        topo = small_topo()
        planner = Peel(topo)
        cache = PlanCache()
        cache.get(planner, HOSTS[0], [HOSTS[1], HOSTS[2]])
        cache.get(planner, HOSTS[4], [HOSTS[5]])
        assert cache.invalidate_hosts({HOSTS[2]}) == 1
        assert len(cache) == 1
        assert cache.invalidations == 1
        # The untouched group still hits; the topology epoch never moved.
        hits = cache.hits
        cache.get(planner, HOSTS[4], [HOSTS[5]])
        assert cache.hits == hits + 1 and cache.epoch == 0

    def test_no_stale_tree_after_membership_change(self):
        """A departed host's old-shape entry is gone: the next lookup of
        that exact shape re-peels instead of serving the cached plan."""
        topo = small_topo()
        planner = Peel(topo)
        cache = PlanCache()
        cache.get(planner, HOSTS[0], [HOSTS[1], HOSTS[2]])
        cache.invalidate_hosts({HOSTS[1]})
        misses = cache.misses
        cache.get(planner, HOSTS[0], [HOSTS[1], HOSTS[2]])
        assert cache.misses == misses + 1

    def test_disjoint_hosts_are_a_noop(self):
        topo = small_topo()
        planner = Peel(topo)
        cache = PlanCache()
        cache.get(planner, HOSTS[0], [HOSTS[1]])
        assert cache.invalidate_hosts({HOSTS[6]}) == 0
        assert cache.invalidations == 0 and len(cache) == 1

    def test_no_aliasing_with_protection_keyed_entries(self):
        """Entries for the same host set at different resilience levels are
        distinct; a membership bump drops both, and neither can ever
        satisfy the other's lookup."""
        topo = small_topo()
        plain = Peel(topo)
        protected = Peel(topo, resilience=1)
        cache = PlanCache()
        key_plain = cache.key_for(plain, HOSTS[0], [HOSTS[1]])
        key_prot = cache.key_for(protected, HOSTS[0], [HOSTS[1]])
        assert key_plain != key_prot
        assert key_plain.hosts == key_prot.hosts
        cache.get(plain, HOSTS[0], [HOSTS[1]])
        cache.get(protected, HOSTS[0], [HOSTS[1]])
        assert len(cache) == 2
        assert cache.invalidate_hosts({HOSTS[1]}) == 2
        assert len(cache) == 0
