"""ServeRuntime end-to-end: admission, queueing, SLOs, fault recovery."""

import pytest

from repro.collectives import Gpu, Group
from repro.experiments.runner import segment_bytes_for
from repro.faults import FaultSchedule
from repro.serve import (
    CompositeAdmission,
    LinkLoadAdmission,
    ServeRuntime,
    TcamAdmission,
    serve_jobs,
)
from repro.sim import SimConfig
from repro.topology import FatTree
from repro.workloads import CollectiveJob, TenantSpec, generate_jobs, generate_tenant_jobs

KB = 1024
MESSAGE = 64 * KB


def topo4() -> FatTree:
    return FatTree(4, hosts_per_tor=2)


def config_for(message: int = MESSAGE) -> SimConfig:
    return SimConfig(segment_bytes=segment_bytes_for(message))


def stream(topo, num_jobs=20, num_gpus=8, load=0.5, seed=4):
    return generate_jobs(
        topo, num_jobs, num_gpus, MESSAGE,
        offered_load=load, gpus_per_host=1, seed=seed,
    )


class TestServing:
    def test_peel_serves_with_zero_switch_updates(self):
        topo = topo4()
        report, runtime = serve_jobs(
            topo, "peel", stream(topo), config_for(), check_invariants=True
        )
        assert report.total.submitted == 20
        assert report.total.completed == 20
        assert report.switch_updates == 0
        assert report.peak_entries_per_switch > 0  # boot-time prefix rules
        assert report.cache_hit_rate > 0
        assert report.total.cct.p99_s > 0

    def test_orca_installs_and_removes_per_group(self):
        topo = topo4()
        report, runtime = serve_jobs(topo, "orca", stream(topo), config_for())
        assert report.switch_updates > 0
        # All groups departed: every per-group entry was removed again.
        assert all(len(t) == 0 for t in runtime.state.tables.values())

    def test_small_tcam_queues_orca(self):
        topo = topo4()
        report, _ = serve_jobs(
            topo, "orca", stream(topo, load=0.9), config_for(),
            admission=TcamAdmission(), tcam_capacity=1,
        )
        assert report.queued_jobs > 0
        assert report.total.completed == 20  # the queue drained eventually
        assert report.total.mean_queue_s > 0

    def test_link_budget_rejects_oversized_messages(self):
        topo = topo4()
        report, _ = serve_jobs(
            topo, "peel", stream(topo, num_jobs=5), config_for(),
            admission=LinkLoadAdmission(max_outstanding_bytes=MESSAGE // 2),
        )
        assert report.total.rejected == 5
        assert report.total.completed == 0

    def test_degenerate_single_host_group_completes_instantly(self):
        topo = topo4()
        host = sorted(topo.hosts)[0]
        gpus = (Gpu(host, 0), Gpu(host, 1))
        job = CollectiveJob(0.0, Group(gpus[0], gpus), MESSAGE)
        report, runtime = serve_jobs(topo, "peel", [job], config_for())
        assert runtime.records[0].status == "done"
        assert report.total.cct.p99_s == 0.0

    def test_per_tenant_rows(self):
        topo = topo4()
        jobs = generate_tenant_jobs(
            topo,
            (
                TenantSpec("a", 6, 8, MESSAGE, offered_load=0.4),
                TenantSpec("b", 4, 4, MESSAGE // 2, offered_load=0.2),
            ),
            gpus_per_host=1,
            seed=9,
        )
        report, _ = serve_jobs(topo, "peel", jobs, config_for())
        assert [t.tenant for t in report.tenants] == ["a", "b"]
        assert report.tenants[0].submitted == 6
        assert report.tenants[1].submitted == 4
        assert report.total.submitted == 10

    def test_report_refuses_while_jobs_are_in_flight(self):
        topo = topo4()
        runtime = ServeRuntime(topo, "peel", config_for())
        runtime.submit_all(stream(topo, num_jobs=3))
        with pytest.raises(RuntimeError, match="in flight"):
            runtime.report()

    def test_rejects_unknown_scheme_and_bad_queue(self):
        with pytest.raises(ValueError, match="scheme registry"):
            ServeRuntime(topo4(), "carrier-pigeon")
        with pytest.raises(ValueError, match="max_queue"):
            ServeRuntime(topo4(), "peel", max_queue=-1)
        # Any registry scheme can serve now — host relays included.
        assert ServeRuntime(topo4(), "ring").scheme_name == "ring"

    def test_queue_capacity_overflow_rejects(self):
        topo = topo4()
        report, _ = serve_jobs(
            topo, "orca", stream(topo, load=0.9), config_for(),
            admission=TcamAdmission(), tcam_capacity=1, max_queue=2,
        )
        assert report.total.rejected > 0
        assert report.total.completed + report.total.rejected == 20


class TestServingUnderFaults:
    def test_midstream_flap_completes_and_invalidates_cache(self):
        topo = topo4()
        jobs = stream(topo, num_jobs=12, load=0.8)
        core = sorted(n for n in topo.graph.nodes if n.startswith("core"))[0]
        agg = sorted(topo.graph.neighbors(core))[0]
        mid = jobs[len(jobs) // 2].arrival_s
        schedule = FaultSchedule().link_flap(
            core, agg, down_at_s=mid, up_at_s=jobs[-1].arrival_s * 2 + 1.0
        )
        report, runtime = serve_jobs(
            topo, "peel", jobs, config_for(),
            admission=CompositeAdmission(
                TcamAdmission(), LinkLoadAdmission(8 * MESSAGE)
            ),
            check_invariants=True, fault_schedule=schedule,
        )
        assert report.total.completed == 12
        assert report.cache_invalidations >= 2  # down + up
        assert report.switch_updates == 0  # faults never touch PEEL rules
