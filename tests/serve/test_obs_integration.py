"""ServeRuntime wired to the observability layer: snapshots + SLO metrics."""

from __future__ import annotations

import pytest

from repro.experiments.common import sim_config
from repro.obs import Observability
from repro.serve import ServeRuntime, TcamAdmission
from repro.topology import LeafSpine
from repro.workloads import TenantSpec, generate_tenant_jobs

KB = 1024


@pytest.fixture(scope="module")
def served():
    topo = LeafSpine(2, 4, 2)
    tenants = [
        TenantSpec("train", num_jobs=4, num_gpus=6, message_bytes=128 * KB,
                   offered_load=0.5),
        TenantSpec("infer", num_jobs=6, num_gpus=4, message_bytes=64 * KB,
                   offered_load=0.5),
    ]
    jobs = generate_tenant_jobs(topo, tenants, gpus_per_host=1, seed=11)
    obs = Observability(sample_interval_s=50e-6)
    runtime = ServeRuntime(
        topo, "ip-multicast", sim_config(128 * KB, seed=11),
        admission=TcamAdmission(), tcam_capacity=16, obs=obs,
    )
    runtime.submit_all(jobs)
    runtime.run()
    report = runtime.report()
    return runtime, obs, report


class TestServeObservability:
    def test_periodic_snapshots_recorded(self, served):
        runtime, obs, _ = served
        assert runtime.obs_snapshots
        snap = runtime.obs_snapshots[0]
        assert {"t_s", "queue_len", "running",
                "peak_tcam_entries", "outstanding_links"} <= set(snap)
        times = [s["t_s"] for s in runtime.obs_snapshots]
        assert times == sorted(times)

    def test_per_tenant_slo_histograms(self, served):
        _, obs, _ = served
        reg = obs.registry
        for tenant in ("train", "infer"):
            cct = reg[f"serve.cct_s.{tenant}"]
            assert cct.total == reg[f"serve.completed.{tenant}"].value
            assert cct.total > 0
            assert reg[f"serve.queue_delay_s.{tenant}"].total == cct.total

    def test_admission_and_cache_counters_folded_once(self, served):
        runtime, obs, _ = served
        reg = obs.registry
        assert "plan_cache.hits" in reg
        assert "serve.switch_updates" in reg
        before = reg["plan_cache.hits"].value
        runtime.report()  # second report must not double-count
        assert reg["plan_cache.hits"].value == before

    def test_running_returns_to_zero(self, served):
        runtime, _, _ = served
        assert runtime.running == 0

    def test_collective_spans_labelled_by_tenant(self, served):
        _, obs, _ = served
        labels = [s.name for s in obs.tracer.spans if s.cat == "collective"]
        assert labels
        assert all("/" in label for label in labels)
        tenants = {label.split("/")[0] for label in labels}
        assert tenants == {"train", "infer"}
