"""Unit tests for the metrics primitives and the registry."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    BYTES_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SampleRing,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_merge_adds(self):
        a, b = Counter("x"), Counter("x")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7
        assert b.value == 4  # merge never mutates the source


class TestGauge:
    def test_last_mode_tracks_most_recent(self):
        g = Gauge("q")
        g.set(5)
        g.set(2)
        assert g.value == 2
        assert g.updates == 2

    def test_max_and_min_modes(self):
        hi, lo = Gauge("p", "max"), Gauge("f", "min")
        for v in (3, 9, 1):
            hi.set(v)
            lo.set(v)
        assert hi.value == 9
        assert lo.value == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Gauge("g", "avg")

    def test_last_gauges_refuse_merge(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1)
        b.set(2)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_max_merge_takes_extremum(self):
        a, b = Gauge("g", "max"), Gauge("g", "max")
        a.set(3)
        b.set(7)
        a.merge(b)
        assert a.value == 7
        assert a.updates == 2

    def test_merge_mode_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Gauge("g", "max").merge(Gauge("g", "min"))

    def test_merging_empty_gauge_is_noop(self):
        a = Gauge("g", "max")
        a.set(3)
        a.merge(Gauge("g", "max"))
        assert a.value == 3
        assert a.updates == 1


class TestHistogram:
    def test_bounds_must_be_strictly_increasing_finite_nonempty(self):
        with pytest.raises(ValueError):
            Histogram("h", [])
        with pytest.raises(ValueError):
            Histogram("h", [1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", [2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", [1.0, float("inf")])

    def test_bucketing_boundaries_inclusive_upper(self):
        h = Histogram("h", [1.0, 10.0])
        for v in (0.0, 1.0, 1.5, 10.0, 11.0):
            h.observe(v)
        # value <= bound lands in that bucket; above the top -> overflow.
        assert h.counts == [2, 2, 1]
        assert h.total == 5
        assert h.min == 0.0
        assert h.max == 11.0
        assert h.mean == pytest.approx((0 + 1 + 1.5 + 10 + 11) / 5)

    def test_merge_requires_equal_bounds(self):
        a = Histogram("h", [1.0, 2.0])
        with pytest.raises(ValueError):
            a.merge(Histogram("h", [1.0, 3.0]))

    def test_merge_adds_bucketwise_and_tracks_extrema(self):
        a, b = Histogram("h", [1.0, 2.0]), Histogram("h", [1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        b.observe(99.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.total == 3
        assert a.min == 0.5
        assert a.max == 99.0

    def test_quantile_returns_bucket_upper_bound(self):
        h = Histogram("h", [1.0, 2.0, 4.0])
        for v in (0.5, 0.5, 1.5, 3.0):
            h.observe(v)
        # rank = q * (total - 1): q=0.5 -> rank 1.5, still in the <=1 bucket.
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.75) == 2.0
        assert h.quantile(1.0) == 4.0

    def test_quantile_overflow_bucket_uses_max(self):
        h = Histogram("h", [1.0])
        h.observe(50.0)
        assert h.quantile(0.5) == 50.0

    def test_quantile_validation_and_empty(self):
        h = Histogram("h", [1.0])
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b", "max") is reg.gauge("b", "max")
        assert reg.histogram("c", [1.0]) is reg.histogram("c", [1.0])
        assert len(reg) == 3
        assert reg.names() == ["a", "b", "c"]
        assert "a" in reg and "z" not in reg

    def test_kind_and_shape_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("g", "max")
        reg.histogram("h", [1.0])
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a", [1.0])
        with pytest.raises(ValueError):
            reg.gauge("g", "min")
        with pytest.raises(ValueError):
            reg.histogram("h", [2.0])

    def test_merge_folds_and_adopts_without_aliasing(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("shared").inc(1)
        b.counter("shared").inc(2)
        b.counter("theirs").inc(5)
        b.histogram("h", BYTES_BOUNDS).observe(4096)
        a.merge(b)
        assert a["shared"].value == 3
        assert a["theirs"].value == 5
        assert a["h"].total == 1
        # Adopted metrics are copies: mutating the source must not leak.
        b.counter("theirs").inc(100)
        assert a["theirs"].value == 5

    def test_merge_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x", "max").set(1)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_to_json_is_deterministic_and_parseable(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("z.late").inc(2)
            reg.counter("a.early").inc(1)
            reg.histogram("h", [1.0, 2.0]).observe(1.5)
            reg.gauge("g", "max").set(9)
            return reg

        one, two = build().to_json(), build().to_json()
        assert one == two
        assert one.endswith("\n")
        snapshot = json.loads(one)
        assert list(snapshot) == sorted(snapshot)
        assert snapshot["h"]["counts"] == [0, 1, 0]

    def test_save_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        path = tmp_path / "metrics.json"
        reg.save(path)
        assert json.loads(path.read_text())["c"]["value"] == 7


class TestObserveMany:
    def test_identical_to_sequential_observes(self):
        # Including the float `sum`: observe_many must accumulate in the
        # same order, so the end state is bit-identical, not just close.
        values = [0.5, 3.0, 1e9, 0.0, 7.25, 1e-9, 3.0]
        one = Histogram("h", BYTES_BOUNDS)
        many = Histogram("h", BYTES_BOUNDS)
        for v in values:
            one.observe(v)
        many.observe_many(values)
        assert one.to_dict() == many.to_dict()
        assert one.sum == many.sum

    def test_empty_is_a_noop(self):
        h = Histogram("h", [1.0])
        h.observe_many([])
        assert h.total == 0
        assert h.min is None and h.max is None

    def test_split_batches_match_one_batch(self):
        values = [float(i % 13) for i in range(100)]
        split = Histogram("h", [2.0, 5.0, 11.0])
        whole = Histogram("h", [2.0, 5.0, 11.0])
        split.observe_many(values[:37])
        split.observe_many(values[37:])
        whole.observe_many(values)
        assert split.to_dict() == whole.to_dict()


class TestSampleRing:
    def test_preserves_recording_order_across_doubling(self):
        ring = SampleRing(capacity=2)
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        for v in values:
            ring.append(v)
        assert ring.values() == values
        assert len(ring) == 5

    def test_flush_replays_in_order_and_resets(self):
        live = Histogram("h", BYTES_BOUNDS)
        ring = SampleRing(capacity=4)
        values = [1.0, 1e12, 2.5, 0.0, 9.0, 1e12, 3.0]
        for v in values:
            live.observe(v)
            ring.append(v)
        deferred = Histogram("h", BYTES_BOUNDS)
        assert ring.flush_into(deferred) == len(values)
        assert deferred.to_dict() == live.to_dict()
        assert deferred.sum == live.sum
        # The ring is drained: a second flush adds nothing.
        assert ring.flush_into(deferred) == 0
        assert deferred.to_dict() == live.to_dict()
        assert len(ring) == 0

    def test_reusable_after_flush(self):
        ring = SampleRing(capacity=2)
        for v in (1.0, 2.0, 3.0):
            ring.append(v)
        ring.flush_into(Histogram("h", [10.0]))
        ring.append(4.0)
        assert ring.values() == [4.0]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SampleRing(capacity=0)
