"""Observability wired onto live simulations: spans, sampling, folding."""

from __future__ import annotations

import json

import pytest

from repro.api import ScenarioSpec, run
from repro.experiments.common import sim_config
from repro.faults import FaultSchedule
from repro.obs import DETAIL_LEVELS, Observability, nesting_violations
from repro.topology import LeafSpine
from repro.workloads import generate_jobs

KB = 1024


def _run(detail="segment", sample_interval_s=50e-6, num_jobs=2):
    topo = LeafSpine(2, 4, 2)
    cfg = sim_config(256 * KB, seed=3)
    jobs = generate_jobs(
        topo, num_jobs, 6, 256 * KB, offered_load=0.4, gpus_per_host=1, seed=3
    )
    obs = Observability(sample_interval_s=sample_interval_s, detail=detail)
    result = run(ScenarioSpec(topology=topo, scheme="peel",
                              jobs=tuple(jobs), config=cfg, obs=obs))
    return obs, result


class TestConstruction:
    def test_validates_interval_and_detail(self):
        with pytest.raises(ValueError):
            Observability(sample_interval_s=0)
        with pytest.raises(ValueError):
            Observability(detail="packet")
        assert set(DETAIL_LEVELS) == {"transfer", "segment"}

    def test_attach_twice_raises(self):
        obs, _ = _run(num_jobs=1)
        with pytest.raises(RuntimeError):
            obs.attach(obs.network)

    def test_finalize_requires_attachment(self):
        with pytest.raises(RuntimeError):
            Observability().finalize()


class TestIntegration:
    def test_run_terminates_and_samples(self):
        obs, result = _run()
        assert result.ccts  # the run completed despite the sampler
        assert obs.sampler.ticks > 0
        # The sampler un-schedules itself once the fabric drains.
        assert obs.network.sim.pending == 0

    def test_span_tree_well_nested(self):
        obs, _ = _run(detail="segment")
        assert nesting_violations(obs.tracer) == []
        cats = {s.cat for s in obs.tracer.spans}
        assert {"collective", "transfer", "layer", "segment"} <= cats

    def test_transfer_spans_parented_to_collectives(self):
        obs, result = _run()
        spans = obs.tracer.spans
        by_cat = {}
        for s in spans:
            by_cat.setdefault(s.cat, []).append(s)
        assert len(by_cat["collective"]) == len(result.ccts)
        for t in by_cat["transfer"]:
            assert t.parent_id is not None
            assert spans[t.parent_id].cat == "collective"

    def test_detail_transfer_skips_segment_spans(self):
        obs, _ = _run(detail="transfer")
        assert not any(s.cat == "segment" for s in obs.tracer.spans)

    def test_headline_counters_folded(self):
        obs, result = _run()
        reg = obs.registry
        assert reg["fabric.bytes_sent"].value == result.total_bytes
        assert reg["fabric.copies.injected"].value > 0
        assert reg["collective.cct_s"].total == len(result.ccts)
        assert reg["transfer.duration_s"].total > 0
        util = [n for n in reg.names() if n.startswith("link.utilization.")]
        assert util, "no per-tier utilization histograms"

    def test_finalize_idempotent(self):
        obs, _ = _run(num_jobs=1)
        before = obs.metrics_json()
        obs.finalize()
        assert obs.metrics_json() == before

    def test_trace_json_loads_in_chrome_format(self):
        obs, _ = _run(num_jobs=1)
        trace = json.loads(obs.trace_json())
        assert {e["ph"] for e in trace["traceEvents"]} >= {"M", "X", "C"}

    def test_fault_run_records_link_events(self):
        topo = LeafSpine(2, 4, 2)
        cfg = sim_config(256 * KB, seed=4)
        jobs = generate_jobs(topo, 1, 8, 256 * KB, gpus_per_host=1, seed=4)
        arrival = jobs[0].arrival_s
        host = jobs[0].group.source.host
        tor = topo.tor_of(host)
        schedule = (
            FaultSchedule()
            .link_down(host, tor, at_s=arrival + 10e-6)
            .link_up(host, tor, at_s=arrival + 60e-6)
        )
        obs = Observability(sample_interval_s=50e-6)
        run(ScenarioSpec(topology=topo, scheme="peel", jobs=tuple(jobs),
                         config=cfg, fault_schedule=schedule, obs=obs))
        assert obs.registry["fabric.link_down_events"].value == 1
        assert obs.registry["fabric.link_up_events"].value == 1
        instants = [
            e for e in json.loads(obs.trace_json())["traceEvents"]
            if e["ph"] == "i"
        ]
        assert any(e["name"].startswith("link-down") for e in instants)

    def test_summary_mentions_headline_numbers(self):
        obs, _ = _run(num_jobs=1)
        text = obs.summary()
        assert "spans" in text and "MiB sent" in text

    def test_save_exports(self, tmp_path):
        obs, _ = _run(num_jobs=1)
        obs.save_trace(tmp_path / "t.json")
        obs.save_metrics(tmp_path / "m.json")
        json.loads((tmp_path / "t.json").read_text())
        json.loads((tmp_path / "m.json").read_text())


class TestDisabledMode:
    def test_unobserved_network_registers_nothing(self):
        from repro.collectives import CollectiveEnv

        env = CollectiveEnv(LeafSpine(2, 2, 2))
        assert env.network.observers == []
        assert env.run() == 0  # no sampler events were ever scheduled
