"""Unit tests for span recording and the Chrome-trace export."""

from __future__ import annotations

import json

import pytest

from repro.obs import SpanTracer, nesting_violations


class TestRecording:
    def test_begin_end_lifecycle(self):
        tr = SpanTracer()
        s = tr.begin("outer", 1.0, track="t", cat="c", note="hi")
        assert tr.open_spans == [s]
        closed = tr.end(s, 3.0)
        assert closed is s
        assert s.duration_s == 2.0
        assert tr.open_spans == []

    def test_end_by_id_and_unknown_id(self):
        tr = SpanTracer()
        s = tr.begin("a", 0.0)
        tr.end(s.span_id, 1.0)
        with pytest.raises(KeyError):
            tr.end(s.span_id, 2.0)

    def test_end_before_start_rejected(self):
        tr = SpanTracer()
        s = tr.begin("a", 5.0)
        with pytest.raises(ValueError):
            tr.end(s, 4.0)

    def test_duration_of_open_span_raises(self):
        tr = SpanTracer()
        s = tr.begin("a", 0.0)
        with pytest.raises(RuntimeError):
            s.duration_s

    def test_add_retroactive_and_validation(self):
        tr = SpanTracer()
        s = tr.add("done", 1.0, 2.0)
        assert s.end_s == 2.0
        with pytest.raises(ValueError):
            tr.add("bad", 2.0, 1.0)

    def test_parent_by_span_or_id(self):
        tr = SpanTracer()
        p = tr.add("p", 0.0, 10.0)
        a = tr.add("a", 1.0, 2.0, parent=p)
        b = tr.add("b", 3.0, 4.0, parent=p.span_id)
        assert a.parent_id == p.span_id == b.parent_id

    def test_close_all_closes_in_id_order(self):
        tr = SpanTracer()
        tr.begin("a", 0.0)
        tr.begin("b", 1.0)
        assert tr.close_all(5.0) == 2
        assert tr.open_spans == []
        assert all(s.end_s == 5.0 for s in tr.spans)


class TestChromeExport:
    def test_export_refuses_open_spans(self):
        tr = SpanTracer()
        tr.begin("open", 0.0)
        with pytest.raises(RuntimeError):
            tr.to_chrome_trace()

    def test_complete_event_shape(self):
        tr = SpanTracer("myproc")
        p = tr.add("p", 0.0, 1e-3, track="collectives", cat="collective")
        tr.add("c", 1e-4, 2e-4, track="transfers", cat="transfer", parent=p)
        trace = tr.to_chrome_trace()
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {m["name"] for m in meta}
        assert meta[0]["args"]["name"] == "myproc"
        spans = [e for e in events if e["ph"] == "X"]
        assert [s["name"] for s in spans] == ["p", "c"]
        child = spans[1]
        assert child["ts"] == pytest.approx(100.0)  # seconds -> microseconds
        assert child["dur"] == pytest.approx(100.0)
        assert child["args"]["parent"] == "p"
        # Distinct tracks map to distinct tids.
        assert spans[0]["tid"] != child["tid"]

    def test_counters_and_instants(self):
        tr = SpanTracer()
        tr.sample("queue", 1e-6, 42.0)
        tr.instant("link-down", 2e-6, track="fabric")
        events = tr.to_chrome_trace()["traceEvents"]
        counter = next(e for e in events if e["ph"] == "C")
        instant = next(e for e in events if e["ph"] == "i")
        assert counter["args"]["value"] == 42.0
        assert instant["s"] == "p"

    def test_events_sorted_by_ts_then_recording_order(self):
        tr = SpanTracer()
        tr.add("late", 5e-6, 6e-6)
        tr.add("early", 1e-6, 2e-6)
        tr.add("tie-a", 3e-6, 4e-6)
        tr.add("tie-b", 3e-6, 4e-6)
        names = [
            e["name"] for e in tr.to_chrome_trace()["traceEvents"]
            if e["ph"] == "X"
        ]
        assert names == ["early", "tie-a", "tie-b", "late"]

    def test_to_json_deterministic_and_loads(self):
        def build():
            tr = SpanTracer()
            tr.add("a", 0.0, 1.0, track="x")
            tr.sample("s", 0.5, 1.0)
            return tr.to_json()

        assert build() == build()
        json.loads(build())

    def test_save(self, tmp_path):
        tr = SpanTracer()
        tr.add("a", 0.0, 1.0)
        path = tmp_path / "trace.json"
        tr.save(path)
        loaded = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in loaded["traceEvents"])


class TestNestingViolations:
    def test_clean_tree_has_no_violations(self):
        tr = SpanTracer()
        p = tr.add("p", 0.0, 10.0)
        c = tr.add("c", 1.0, 9.0, parent=p)
        tr.add("g", 2.0, 8.0, parent=c)
        assert nesting_violations(tr) == []

    def test_unclosed_span_reported(self):
        tr = SpanTracer()
        tr.begin("open", 0.0)
        assert any("never closed" in p for p in nesting_violations(tr))

    def test_child_escaping_parent_reported(self):
        tr = SpanTracer()
        p = tr.add("p", 1.0, 2.0)
        tr.add("c", 0.5, 1.5, parent=p)
        assert any("escapes parent" in p for p in nesting_violations(tr))

    def test_dangling_parent_reported(self):
        tr = SpanTracer()
        tr.add("c", 0.0, 1.0, parent=99)
        assert any("dangling" in p for p in nesting_violations(tr))
