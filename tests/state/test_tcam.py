"""TCAM capacity model."""

import pytest

from repro.state import TcamOverflowError, TcamTable


class TestTcamTable:
    def test_install_and_lookup(self):
        table = TcamTable(capacity=4)
        table.install("g1", (0, 1))
        assert table.lookup("g1") == (0, 1)
        assert table.lookup("g2") is None

    def test_overflow_raises(self):
        table = TcamTable(capacity=2)
        table.install("a", (0,))
        table.install("b", (1,))
        with pytest.raises(TcamOverflowError):
            table.install("c", (2,))

    def test_update_in_place_does_not_overflow(self):
        table = TcamTable(capacity=1)
        table.install("a", (0,))
        table.install("a", (0, 1))  # same key: no new entry
        assert table.lookup("a") == (0, 1)

    def test_remove_frees_space(self):
        table = TcamTable(capacity=1)
        table.install("a", (0,))
        table.remove("a")
        table.install("b", (1,))
        assert len(table) == 1

    def test_remove_missing_is_noop(self):
        TcamTable(capacity=1).remove("ghost")

    def test_utilization(self):
        table = TcamTable(capacity=4)
        table.install("a", (0,))
        assert table.utilization == 0.25

    def test_peel_rules_fit_easily(self):
        """The whole point: k-1 static rules fit in a commodity TCAM even
        at k=128, whereas per-group state cannot."""
        from repro.core import preinstalled_rules

        table = TcamTable()  # default commodity capacity
        for rule in preinstalled_rules(128):
            table.install((rule.prefix.value, rule.prefix.length), rule.out_ports)
        assert len(table) == 127
        assert table.utilization < 0.05
