"""TCAM capacity model."""

import pytest

from repro.state import TcamOverflowError, TcamTable


class TestTcamTable:
    def test_install_and_lookup(self):
        table = TcamTable(capacity=4)
        table.install("g1", (0, 1))
        assert table.lookup("g1") == (0, 1)
        assert table.lookup("g2") is None

    def test_overflow_raises(self):
        table = TcamTable(capacity=2)
        table.install("a", (0,))
        table.install("b", (1,))
        with pytest.raises(TcamOverflowError):
            table.install("c", (2,))

    def test_update_in_place_does_not_overflow(self):
        table = TcamTable(capacity=1)
        table.install("a", (0,))
        table.install("a", (0, 1))  # same key: no new entry
        assert table.lookup("a") == (0, 1)

    def test_remove_frees_space(self):
        table = TcamTable(capacity=1)
        table.install("a", (0,))
        table.remove("a")
        table.install("b", (1,))
        assert len(table) == 1

    def test_remove_missing_is_noop(self):
        TcamTable(capacity=1).remove("ghost")

    def test_utilization(self):
        table = TcamTable(capacity=4)
        table.install("a", (0,))
        assert table.utilization == 0.25

    def test_updates_counts_installs_overwrites_removes(self):
        table = TcamTable(capacity=4)
        table.install("a", (0,))       # install
        table.install("a", (0, 1))     # overwrite: still a control-plane op
        table.remove("a")              # remove
        table.remove("a")              # no-op: key already gone
        assert table.updates == 3

    def test_peak_high_water_mark(self):
        table = TcamTable(capacity=4)
        table.install("a", (0,))
        table.install("b", (1,))
        table.remove("a")
        table.remove("b")
        assert table.peak == 2
        assert len(table) == 0
        assert not table.overflowed

    def test_non_strict_counts_overflow_instead_of_raising(self):
        table = TcamTable(capacity=1, strict=False)
        table.install("a", (0,))
        table.install("b", (1,))
        table.install("c", (2,))
        assert table.overflow_events == 2
        assert table.overflowed
        assert len(table) == 3  # entries kept so peaks stay measurable

    def test_would_fit(self):
        table = TcamTable(capacity=2)
        table.install("a", (0,))
        assert table.would_fit()
        assert not table.would_fit(2)
        with pytest.raises(ValueError):
            table.would_fit(-1)

    def test_contains(self):
        table = TcamTable(capacity=2)
        table.install("a", (0,))
        assert "a" in table
        assert "b" not in table

    def test_peel_rules_fit_easily(self):
        """The whole point: k-1 static rules fit in a commodity TCAM even
        at k=128, whereas per-group state cannot."""
        from repro.core import preinstalled_rules

        table = TcamTable()  # default commodity capacity
        for rule in preinstalled_rules(128):
            table.install((rule.prefix.value, rule.prefix.length), rule.out_ports)
        assert len(table) == 127
        assert table.utilization < 0.05
