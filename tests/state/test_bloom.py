"""Bloom filter: no false negatives, calibrated false-positive rate."""

import pytest

from repro.state import BloomFilter, optimal_bits, optimal_hashes


class TestSizing:
    def test_optimal_bits_grows_with_elements(self):
        assert optimal_bits(1000, 0.01) > optimal_bits(100, 0.01)

    def test_optimal_bits_grows_with_precision(self):
        assert optimal_bits(100, 0.001) > optimal_bits(100, 0.1)

    def test_classic_value(self):
        # ~9.59 bits per element at 1% FPR.
        assert abs(optimal_bits(1000, 0.01) / 1000 - 9.59) < 0.05

    def test_zero_elements(self):
        assert optimal_bits(0, 0.01) == 1

    @pytest.mark.parametrize("fpr", [0, 1, -0.5, 2])
    def test_rejects_bad_fpr(self, fpr):
        with pytest.raises(ValueError):
            optimal_bits(10, fpr)

    def test_optimal_hashes(self):
        assert optimal_hashes(960, 100) == round(9.6 * 0.693)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter.for_capacity(200, 0.01)
        items = [f"link-{i}" for i in range(200)]
        bf.update(items)
        assert all(item in bf for item in items)

    def test_empty_contains_nothing_much(self):
        bf = BloomFilter(64, 3)
        assert "anything" not in bf

    def test_fpr_near_target(self):
        bf = BloomFilter.for_capacity(500, 0.05)
        bf.update(f"member-{i}" for i in range(500))
        probes = [f"probe-{i}" for i in range(4000)]
        fp = sum(1 for p in probes if p in bf)
        rate = fp / len(probes)
        assert rate < 0.10  # within 2x of the 5% design point

    def test_expected_fpr_tracks_fill(self):
        bf = BloomFilter.for_capacity(100, 0.01)
        assert bf.expected_fpr() == 0.0
        bf.update(range(100))
        assert 0.001 < bf.expected_fpr() < 0.05

    def test_deterministic(self):
        a = BloomFilter(128, 4)
        b = BloomFilter(128, 4)
        a.add("x")
        b.add("x")
        assert a._array == b._array

    def test_nbytes(self):
        assert BloomFilter(16, 2).nbytes == 2
        assert BloomFilter(17, 2).nbytes == 3

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)
