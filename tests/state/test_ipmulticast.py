"""Naive IP multicast state accounting (the exponential blow-up)."""

import pytest

from repro.state import (
    entries_for_groups,
    state_reduction_factor,
    worst_case_group_entries,
)


class TestWorstCase:
    def test_headline_four_billion_at_k64(self):
        """§1: 'the required entries plummet from over 4 x 10^9 to fewer
        than 64'."""
        assert worst_case_group_entries(64) > 4e9

    def test_exponential_growth(self):
        assert worst_case_group_entries(8) == 2**4
        assert worst_case_group_entries(16) == 2**8

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            worst_case_group_entries(5)


class TestActiveGroups:
    def test_distinct_subsets_counted_once(self):
        groups = [frozenset({1, 2}), frozenset({1, 2}), frozenset({3})]
        assert entries_for_groups(groups) == 2

    def test_empty(self):
        assert entries_for_groups([]) == 0


class TestReduction:
    def test_reduction_factor_enormous(self):
        assert state_reduction_factor(64) > 6e7

    def test_reduction_monotone_in_k(self):
        factors = [state_reduction_factor(k) for k in (8, 16, 32, 64)]
        assert factors == sorted(factors)
