"""Cross-scheme comparison table."""

from repro.state import compare_schemes, format_table


class TestCompareSchemes:
    def test_contains_all_schemes(self):
        rows = {r.scheme for r in compare_schemes(64)}
        assert rows == {"ip-multicast", "rsbf", "orca", "peel"}

    def test_peel_row_matches_headline(self):
        peel = next(r for r in compare_schemes(64) if r.scheme == "peel")
        assert peel.switch_entries == 63
        assert peel.header_bytes < 8
        assert peel.setup_latency == "none"

    def test_peel_fewest_entries_among_stateful(self):
        rows = compare_schemes(64)
        peel = next(r for r in rows if r.scheme == "peel")
        ip = next(r for r in rows if r.scheme == "ip-multicast")
        orca = next(r for r in rows if r.scheme == "orca")
        assert peel.switch_entries < orca.switch_entries < ip.switch_entries

    def test_rsbf_header_dominates(self):
        rows = compare_schemes(64)
        rsbf = next(r for r in rows if r.scheme == "rsbf")
        peel = next(r for r in rows if r.scheme == "peel")
        assert rsbf.header_bytes > 100 * peel.header_bytes

    def test_format_table_renders_all_rows(self):
        text = format_table(compare_schemes(16))
        for scheme in ("ip-multicast", "rsbf", "orca", "peel"):
            assert scheme in text
        assert len(text.splitlines()) == 6
