"""RSBF header-size model: the Figure 3 claims."""

import pytest

from repro.state import (
    MTU_BYTES,
    bloom_header_bits,
    exceeds_mtu,
    false_positive_extra_links,
    rsbf_bandwidth_overhead,
    rsbf_header_bytes,
    tree_links_for_job,
)


class TestTreeLinks:
    def test_formula(self):
        # 4 pods x (1 core->agg + k/2 agg->ToR + (k/2)^2 ToR->host)
        assert tree_links_for_job(8) == 4 * (1 + 4 + 16)

    def test_caps_at_pod_count(self):
        assert tree_links_for_job(4, num_pods=100) == 4 * (1 + 2 + 4)

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            tree_links_for_job(7)


class TestHeaderSize:
    def test_grows_with_k(self):
        sizes = [rsbf_header_bytes(k, 0.01) for k in (4, 8, 16, 32, 64)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 100 * sizes[0] / 10

    def test_tighter_fpr_costs_more(self):
        assert rsbf_header_bytes(32, 0.01) > rsbf_header_bytes(32, 0.20)

    def test_fig3_headline_exceeds_mtu_past_k32(self):
        """'RSBF's Bloom-filter header exceeds one full MTU once k > 32;
        even at a generous false-positive ratio'."""
        assert not exceeds_mtu(32, 0.20)
        assert exceeds_mtu(64, 0.20)
        assert exceeds_mtu(64, 0.01)

    def test_bandwidth_overhead_over_100pct(self):
        """Fig. 3 caption: overhead surpasses 100% at large k."""
        assert rsbf_bandwidth_overhead(64, 0.20) > 1.0

    def test_small_fabric_is_cheap(self):
        assert rsbf_header_bytes(4, 0.20) < MTU_BYTES / 10

    def test_peel_always_smaller(self):
        from repro.core import hierarchical_header_bytes

        for k in (4, 8, 16, 32, 64, 128):
            assert hierarchical_header_bytes(k) < rsbf_header_bytes(k, 0.20)

    def test_bits_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bloom_header_bits(10, 0)
        with pytest.raises(ValueError):
            bloom_header_bits(-1, 0.1)


class TestFalsePositiveTraffic:
    def test_expected_extra_links(self):
        assert false_positive_extra_links(10, 100, 0.05) == pytest.approx(5.0)

    def test_zero_fpr_means_zero_waste(self):
        assert false_positive_extra_links(10, 100, 0.0) == 0.0

    def test_rejects_negative_ports(self):
        with pytest.raises(ValueError):
            false_positive_extra_links(-1, 5, 0.1)
