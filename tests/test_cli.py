"""CLI smoke tests (fast subcommands only)."""

import warnings

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_have_subcommands(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name] if name not in (
                "fig4", "fig5", "fig6", "fig7", "guard", "deploy", "churn"
            ) else [name])
            assert args.command == name

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        assert "optimal" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "RSBF" in capsys.readouterr().out

    def test_headline(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "PEEL rules" in out
        assert "saves" in out

    def test_frag(self, capsys):
        assert main(["frag"]) == 0
        assert "window" in capsys.readouterr().out

    def test_fig7_tiny(self, capsys):
        assert main(["fig7", "--failures", "4", "--num-jobs", "4",
                     "--jobs", "1"]) == 0
        assert "peel" in capsys.readouterr().out

    def test_fig7_with_invariants(self, capsys):
        assert main(
            ["fig7", "--failures", "4", "--num-jobs", "2", "--jobs", "1",
             "--check-invariants"]
        ) == 0
        assert "peel" in capsys.readouterr().out

    def test_fig7_parallel_workers(self, capsys):
        assert main(["fig7", "--failures", "4", "--num-jobs", "2",
                     "--jobs", "2"]) == 0
        assert "peel" in capsys.readouterr().out

    def test_workers_flag(self, capsys):
        """``--workers``/``-j`` is the documented spelling; ``--jobs``
        stays as a hidden alias for old scripts."""
        assert main(["fig7", "--failures", "4", "--num-jobs", "2",
                     "--workers", "1"]) == 0
        assert "peel" in capsys.readouterr().out
        args = build_parser().parse_args(["fig7", "-j", "2"])
        assert args.workers == 2
        assert build_parser().parse_args(["fig7", "--jobs", "3"]).workers == 3

    def test_jobs_alias_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            args = build_parser().parse_args(["fig7", "--jobs", "3"])
        assert args.workers == 3
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "-j/--workers" in str(deprecations[0].message)

    def test_workers_flag_never_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            build_parser().parse_args(["fig7", "--workers", "3"])
            build_parser().parse_args(["fig7", "-j", "3"])
        assert [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ] == []

    def test_jobs_alias_byte_identical_to_workers(self, capsys):
        assert main(["failover", "--protection", "0", "--workers", "1"]) == 0
        via_workers = capsys.readouterr().out
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert main(
                ["failover", "--protection", "0", "--jobs", "1"]
            ) == 0
        assert capsys.readouterr().out == via_workers

    def test_jobs_alias_hidden_from_help(self):
        import argparse

        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        fig7_help = sub.choices["fig7"].format_help()
        assert "--workers" in fig7_help
        assert "--jobs" not in fig7_help

    def test_failover_sweep(self, capsys):
        assert main(["failover", "--protection", "0", "1", "-j", "1"]) == 0
        out = capsys.readouterr().out
        assert "reactive re-peel" in out
        assert "local failover" in out
        assert "budget/switch" in out

    def test_faults_demo(self, capsys, tmp_path):
        trace = tmp_path / "golden.txt"
        assert main(
            ["faults", "--gpus", "8", "--message-mb", "1",
             "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "re-plans" in out
        assert "OK (0 violations)" in out
        assert trace.read_text().strip()  # digest written

    def test_faults_with_schedule_file(self, capsys, tmp_path):
        from repro.faults import FaultSchedule

        path = tmp_path / "faults.json"
        FaultSchedule().drop_segments(
            "spine:0", "leaf:0", at_s=1e-4, count=1
        ).save(path)
        assert main(
            ["faults", "--gpus", "8", "--message-mb", "1",
             "--schedule", str(path)]
        ) == 0
        assert "invariants" in capsys.readouterr().out

    def test_serve_tiny(self, capsys):
        assert main(
            ["serve", "--loads", "0.5", "--num-jobs", "12", "--jobs", "1",
             "--schemes", "peel"]
        ) == 0
        out = capsys.readouterr().out
        assert "hit%" in out
        assert "peel" in out

    def test_obs_writes_artifacts(self, capsys, tmp_path):
        import json

        trace = tmp_path / "run.trace.json"
        metrics = tmp_path / "run.metrics.json"
        assert main(
            ["obs", "--scenario", "headline",
             "--trace-out", str(trace), "--metrics-out", str(metrics)]
        ) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        loaded = json.load(trace.open())
        cats = {e.get("cat") for e in loaded["traceEvents"]}
        assert {"collective", "transfer"} <= cats
        assert json.load(metrics.open())

    def test_obs_sample_interval_and_detail_flags(self, capsys):
        assert main(
            ["obs", "--scenario", "fault", "--sample-interval", "2e-4",
             "--detail", "transfer"]
        ) == 0
        assert "sampler ticks" in capsys.readouterr().out

    def test_replay_headline(self, capsys):
        assert main(["replay", "--scenario", "headline"]) == 0
        out = capsys.readouterr().out
        assert "identical" in out
        assert "DIVERGED" not in out

    def test_replay_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--scenario", "nope"])

    def test_soak_tiny(self, capsys, tmp_path):
        assert main(
            ["soak", "--epochs", "1", "--state-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "1/1" in out
        assert (tmp_path / "soak.json").exists()

    def test_obs_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--scenario", "nope"])

    def test_serve_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--schemes", "ring"])

    def test_faults_rejects_unrecoverable_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--scheme", "ring"])
