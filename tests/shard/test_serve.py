"""Sharded serving: report reconstruction, identity, and refusal paths."""

import dataclasses

import pytest

from repro.serve import ServeRuntime
from repro.serve.cache import PlanCache
from repro.shard import (
    SHARDABLE_SERVE_SCHEMES,
    ServeShardSpec,
    ShardedServe,
    ShardError,
    pod_local_jobs,
    serve_sharded,
)
from repro.sim import SimConfig
from repro.topology import FatTree

KB = 1024


@pytest.fixture(scope="module")
def campaign():
    topo = FatTree(4)
    jobs = pod_local_jobs(
        topo, 3, 3, 64 * KB, seed=3, tenants=("train", "infer")
    )
    config = SimConfig(segment_bytes=64 * KB, seed=3)
    sspec = ServeShardSpec(
        topology=topo,
        scheme="peel",
        jobs=tuple(jobs),
        shards=2,
        config=config,
        record_trace=True,
        event_digest=True,
    )
    serial = ServeRuntime(topo, "peel", config, record_trace=True)
    serial.env.sim.attach_digest()
    serial.submit_all(list(jobs))
    serial.run()
    return sspec, serial


class TestShardedServe:
    def test_report_and_digests_match_serial(self, campaign):
        sspec, serial = campaign
        result = serve_sharded(sspec)
        assert result.report == serial.report()
        assert result.trace_digest == serial.env.trace.digest()
        assert result.event_digest == serial.env.sim.event_digest.hexdigest()
        assert result.events_processed == serial.env.sim.processed
        assert result.shards == 2
        assert result.windows >= 1

    def test_process_mode_matches(self, campaign):
        sspec, serial = campaign
        result = serve_sharded(sspec, processes=True)
        assert result.report == serial.report()
        assert result.trace_digest == serial.env.trace.digest()

    def test_four_shards_match(self, campaign):
        sspec, serial = campaign
        result = serve_sharded(dataclasses.replace(sspec, shards=4))
        assert result.report == serial.report()
        assert result.trace_digest == serial.env.trace.digest()

    def test_job_rows_are_globally_ordered(self, campaign):
        sspec, _ = campaign
        result = serve_sharded(sspec)
        indices = [row[0] for row in result.job_rows]
        assert indices == list(range(len(sspec.jobs)))

    def test_campaign_object_runs_once(self, campaign):
        sspec, _ = campaign
        serve = ShardedServe(sspec)
        serve.run()
        with pytest.raises(RuntimeError, match="already run"):
            serve.run()


class TestServeRefusals:
    def test_needs_two_shards(self, campaign):
        sspec, _ = campaign
        with pytest.raises(ShardError, match="shards >= 2"):
            ShardedServe(dataclasses.replace(sspec, shards=1))

    def test_unshardable_scheme(self, campaign):
        sspec, _ = campaign
        assert "orca" not in SHARDABLE_SERVE_SCHEMES
        with pytest.raises(ShardError, match="not shardable"):
            ShardedServe(dataclasses.replace(sspec, scheme="orca"))

    def test_plan_cache_eviction_refused(self, campaign):
        """A shard that evicts cache entries cannot reproduce the serial
        LRU (eviction order couples to global recency), so it refuses."""
        sspec, _ = campaign
        tiny = dataclasses.replace(sspec, plan_cache_size=1)
        with pytest.raises(ShardError, match="evicted"):
            serve_sharded(tiny)

    def test_plan_cache_size_matches_serial_when_shared(self, campaign):
        """With the same oversized cache on both sides, cache counters
        partition exactly."""
        sspec, _ = campaign
        big = dataclasses.replace(sspec, plan_cache_size=1 << 12)
        result = serve_sharded(big)
        serial = ServeRuntime(
            sspec.topology, "peel", sspec.config, record_trace=True,
            plan_cache=PlanCache(1 << 12),
        )
        serial.submit_all(list(sspec.jobs))
        serial.run()
        assert result.report == serial.report()
