"""Unit tests for the sharded parallel core (repro.shard)."""
