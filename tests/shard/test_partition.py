"""Partition planning: zones, traffic-closure coupling, shard assignment."""

import pytest

from repro.collectives import Gpu, Group
from repro.faults import FaultSchedule
from repro.control import ChurnEvent, ChurnSchedule
from repro.shard import (
    CORE_ZONE,
    ShardPartitionError,
    lookahead_s,
    plan_partition,
    pod_local_jobs,
    zone_of,
)
from repro.sim import SimConfig
from repro.topology import FatTree
from repro.workloads import CollectiveJob

KB = 1024


def pod_job(topo, pod, hosts=3, arrival=0.0):
    names = sorted(h for h in topo.hosts if h.split(":")[1] == f"p{pod}")[:hosts]
    members = tuple(Gpu(h, 0) for h in names)
    return CollectiveJob(arrival, Group(members[0], members), 64 * KB)


class TestZones:
    def test_every_fattree_node_zones(self):
        topo = FatTree(4)
        for node in topo.graph.nodes:
            kind, index = zone_of(node)
            if node.startswith("core"):
                assert (kind, index) == CORE_ZONE
            else:
                assert kind == "pod"
                assert 0 <= index < 4

    def test_hosts_and_switches_share_their_pod_zone(self):
        topo = FatTree(4)
        assert zone_of(topo.tors_in_pod(2)[0]) == zone_of(
            topo.aggs_in_pod(2)[0]
        )


class TestPlanPartition:
    def test_pod_local_jobs_split_over_shards(self):
        topo = FatTree(4)
        jobs = [pod_job(topo, p, arrival=p * 1e-6) for p in range(4)]
        plan = plan_partition(topo, jobs, 2)
        # 4 pods + core = 5 components, dealt round-robin over 2 shards.
        assert len(plan.components) == 5
        assert sorted(plan.jobs_for(0) + plan.jobs_for(1)) == [0, 1, 2, 3]
        for g, job in enumerate(jobs):
            shard = plan.job_shard[g]
            for gpu in job.group.members:
                assert plan.shard_of_node(gpu.host) == shard

    def test_jobs_for_preserves_global_order(self):
        topo = FatTree(4)
        jobs = [pod_job(topo, p % 4, arrival=p * 1e-6) for p in range(8)]
        plan = plan_partition(topo, jobs, 4)
        for shard in range(4):
            indices = plan.jobs_for(shard)
            assert indices == sorted(indices)

    def test_multi_pod_group_welds_components(self):
        topo = FatTree(4)
        hosts = [
            sorted(h for h in topo.hosts if h.split(":")[1] == f"p{p}")[0]
            for p in range(4)
        ]
        members = tuple(Gpu(h, 0) for h in hosts)
        spanning = CollectiveJob(0.0, Group(members[0], members), 64 * KB)
        with pytest.raises(ShardPartitionError, match="component"):
            plan_partition(topo, [spanning], 2)

    def test_more_shards_than_components_rejected(self):
        topo = FatTree(4)
        jobs = [pod_job(topo, p) for p in range(4)]
        with pytest.raises(ShardPartitionError, match="cannot run 8 shards"):
            plan_partition(topo, jobs, 8)

    def test_cross_pod_fault_couples_zones(self):
        topo = FatTree(4)
        jobs = [pod_job(topo, p) for p in range(4)]
        agg = topo.aggs_in_pod(0)[0]
        core = next(n for n in topo.graph.neighbors(agg)
                    if n.startswith("core"))
        schedule = FaultSchedule().link_down(agg, core, at_s=1e-6)
        plan = plan_partition(topo, jobs, 2, fault_schedule=schedule)
        # The agg-core fault welds pod 0 with the core component.
        assert plan.shard_of_node(agg) == plan.shard_of_node(core)
        assert len(plan.components) == 4

    def test_churn_host_joins_the_target_jobs_component(self):
        topo = FatTree(4)
        jobs = [pod_job(topo, p) for p in range(4)]
        foreign = sorted(
            h for h in topo.hosts if h.split(":")[1] == "p3"
        )[-1]
        churn = ChurnSchedule(
            (ChurnEvent(5e-6, 0, "join", host=foreign),)
        )
        plan = plan_partition(topo, jobs, 2, churn=churn)
        assert plan.shard_of_node(foreign) == plan.job_shard[0]

    def test_churn_event_for_missing_job_rejected(self):
        topo = FatTree(4)
        jobs = [pod_job(topo, 0)]
        churn = ChurnSchedule((ChurnEvent(5e-6, 3, "leave",
                                          host=jobs[0].group.members[-1].host),))
        with pytest.raises(ShardPartitionError, match="targets job 3"):
            plan_partition(topo, jobs, 1, churn=churn)


class TestLookahead:
    def test_single_shard_partition_has_infinite_lookahead(self):
        topo = FatTree(4)
        jobs = [pod_job(topo, p) for p in range(4)]
        plan = plan_partition(topo, jobs, 1)
        assert lookahead_s(plan, topo, SimConfig()) == float("inf")

    def test_split_partition_lookahead_is_link_propagation(self):
        topo = FatTree(4)
        jobs = [pod_job(topo, p) for p in range(4)]
        plan = plan_partition(topo, jobs, 2)
        config = SimConfig()
        # Pod-to-core links physically cross shards even though no
        # traffic does, so the conservative bound is one propagation.
        assert lookahead_s(plan, topo, config) == config.propagation_delay_s


class TestPodLocalJobs:
    def test_groups_are_pod_confined_and_deterministic(self):
        topo = FatTree(4)
        a = pod_local_jobs(topo, 3, 3, 64 * KB, seed=4)
        b = pod_local_jobs(topo, 3, 3, 64 * KB, seed=4)
        assert a == b
        assert len(a) == 12
        for job in a:
            pods = {gpu.host.split(":")[1] for gpu in job.group.members}
            assert len(pods) == 1
        arrivals = [job.arrival_s for job in a]
        assert arrivals == sorted(arrivals)

    def test_tenants_assigned_round_robin_in_timeline_order(self):
        topo = FatTree(4)
        jobs = pod_local_jobs(topo, 2, 3, 64 * KB, seed=1,
                              tenants=("a", "b", "c"))
        assert [j.tenant for j in jobs] == ["a", "b", "c"] * 2 + ["a", "b"]
