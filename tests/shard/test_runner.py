"""Sharded scenario runs: golden byte-identity, refusals, snapshot/resume."""

import dataclasses

import pytest

from repro.api import run
from repro.experiments.scenarios import shard_scenario
from repro.obs import Observability
from repro.replay import Snapshot
from repro.shard import ShardedScenarioRun, ShardError, validate_spec
from repro.sim import SimConfig


@pytest.fixture(scope="module")
def golden():
    spec, cuts = shard_scenario(shards=2)
    serial = run(dataclasses.replace(spec, shards=1))
    return spec, cuts, serial


def assert_matches(serial, sharded):
    assert sharded.trace_digest == serial.trace_digest
    assert sharded.replay.event_digest == serial.replay.event_digest
    assert sharded.ccts == serial.ccts
    assert sharded.replay.events_processed == serial.replay.events_processed
    assert sharded.total_bytes == serial.total_bytes


class TestGoldenScenario:
    def test_api_run_dispatches_to_shards(self, golden):
        spec, _, serial = golden
        assert_matches(serial, run(spec))

    def test_process_mode_matches(self, golden):
        spec, _, serial = golden
        from repro.shard import run_sharded

        assert_matches(serial, run_sharded(spec, processes=True))

    def test_kept_trace_lines_match_serial(self, golden):
        from repro.api import ScenarioRun

        spec, _, _ = golden
        kept = dataclasses.replace(spec, keep_trace_events=True)
        serial_run = ScenarioRun(dataclasses.replace(kept, shards=1))
        serial_run.finish()
        sharded_run = ShardedScenarioRun(kept)
        sharded_run.finish()
        assert sharded_run.trace_events == serial_run.env.trace.events

    def test_windows_advance_and_drain(self, golden):
        spec, _, _ = golden
        sharded_run = ShardedScenarioRun(spec)
        sharded_run.finish()
        assert sharded_run.drained
        assert sharded_run.windows_run >= 1
        assert len(sharded_run.shards) == 2


class TestSnapshotResume:
    def test_mid_run_snapshot_resumes_byte_identical(self, golden):
        spec, cuts, serial = golden
        for cut in cuts:
            sharded_run = ShardedScenarioRun(spec)
            sharded_run.run_until(cut)
            blob = sharded_run.snapshot().to_bytes()
            resumed = Snapshot.from_bytes(blob).restore()
            result = resumed.finish()
            assert_matches(serial, result)
            assert result.replay.resumed


class TestRefusals:
    def test_unshardable_scheme(self, golden):
        spec, _, _ = golden
        bad = dataclasses.replace(spec, scheme="orca")
        with pytest.raises(ShardError, match="not shardable"):
            validate_spec(bad)

    def test_ecmp_schemes_are_shardable(self, golden):
        """ring/tree draw per-job ECMP streams now, so the partition
        accepts them (the old refusal is lifted)."""
        spec, _, _ = golden
        for scheme in ("ring", "tree", "allreduce-ring", "allgather-ring"):
            validate_spec(dataclasses.replace(spec, scheme=scheme))

    def test_max_events_budget(self, golden):
        spec, _, _ = golden
        bad = dataclasses.replace(spec, max_events=100)
        with pytest.raises(ShardError, match="max_events"):
            validate_spec(bad)

    def test_invariant_watchdog(self, golden):
        spec, _, _ = golden
        bad = dataclasses.replace(spec, check_invariants=True)
        with pytest.raises(ShardError, match="watchdog"):
            validate_spec(bad)
        # Watchdog off is the documented escape hatch.
        validate_spec(dataclasses.replace(bad, invariant_watchdog=False))

    def test_periodic_sampling_obs(self, golden):
        spec, _, _ = golden
        bad = dataclasses.replace(spec, obs=Observability())
        with pytest.raises(ShardError, match="sampling"):
            validate_spec(bad)

    def test_wire_loss(self, golden):
        spec, _, _ = golden
        lossy = dataclasses.replace(
            spec.config, loss_probability=0.01
        )
        bad = dataclasses.replace(spec, config=lossy)
        with pytest.raises(ShardError, match="loss_probability"):
            validate_spec(bad)

    def test_refusal_happens_at_run_time_too(self, golden):
        spec, _, _ = golden
        bad = dataclasses.replace(spec, scheme="orca")
        with pytest.raises(ShardError, match="not shardable"):
            run(bad)


class TestCheckedInvariantsVariant:
    def test_invariants_on_with_watchdog_off_matches_serial(self, golden):
        spec, _, _ = golden
        checked = dataclasses.replace(
            spec, check_invariants=True, invariant_watchdog=False
        )
        serial = run(dataclasses.replace(checked, shards=1))
        sharded = run(checked)
        assert_matches(serial, sharded)
        assert sharded.invariant_violations == serial.invariant_violations


def test_simconfig_default_has_no_loss():
    # The validate_spec loss gate assumes the default config is lossless.
    assert SimConfig().loss_probability == 0.0
