"""ScenarioSpec.churn: canonicalization, determinism, membership counters."""

import dataclasses

import pytest

from repro.api import ScenarioSpec, run
from repro.collectives import Gpu, Group
from repro.control import ChurnEvent, ChurnSchedule
from repro.sim import SimConfig
from repro.topology import LeafSpine
from repro.workloads import CollectiveJob

KB = 1024


def churn_spec(events, **kwargs):
    topo = LeafSpine(2, 4, 2)
    job = CollectiveJob(
        0.0,
        Group(
            Gpu("host:l0:0", 0),
            (
                Gpu("host:l0:0", 0),
                Gpu("host:l0:1", 0),
                Gpu("host:l1:0", 0),
            ),
        ),
        1 << 20,
    )
    kwargs.setdefault("check_invariants", True)
    kwargs.setdefault("event_digest", True)
    return ScenarioSpec(
        topology=topo,
        scheme="peel",
        jobs=(job,),
        config=SimConfig(segment_bytes=32 * KB),
        churn=events,
        **kwargs,
    )


EVENTS = (
    ChurnEvent(30e-6, 0, "join", host="host:l3:1"),
    ChurnEvent(60e-6, 0, "leave", host="host:l1:0"),
)


class TestCanonicalization:
    def test_iterable_coerced_to_schedule(self):
        spec = churn_spec(list(EVENTS))
        assert isinstance(spec.churn, ChurnSchedule)
        assert spec.churn.events == EVENTS

    def test_schedule_passes_through(self):
        schedule = ChurnSchedule(EVENTS)
        assert churn_spec(schedule).churn is schedule

    def test_bad_event_rejected_at_spec_build(self):
        with pytest.raises(ValueError):
            churn_spec([ChurnEvent(10e-6, 0, "join")])  # join needs a host


class TestChurnRun:
    def test_membership_counters_populated(self):
        result = run(churn_spec(EVENTS))
        assert result.invariant_violations == []
        assert result.membership["joins"] == 1
        assert result.membership["leaves"] == 1
        assert result.membership["grafts"] + result.membership["full_repeels"] >= 1
        assert result.membership["prunes"] >= 1
        assert len(result.ccts) == 1

    def test_no_churn_means_empty_membership(self):
        spec = churn_spec(EVENTS)
        plain = dataclasses.replace(spec, churn=None)
        assert run(plain).membership == {}

    def test_identical_runs_match_byte_for_byte(self):
        first = run(churn_spec(EVENTS))
        second = run(churn_spec(EVENTS))
        assert first.replay.event_digest == second.replay.event_digest
        assert first.ccts == second.ccts
        assert first.membership == second.membership

    def test_churn_changes_the_event_stream(self):
        with_churn = run(churn_spec(EVENTS))
        without = run(dataclasses.replace(churn_spec(EVENTS), churn=None))
        assert with_churn.replay.event_digest != without.replay.event_digest
