"""ScenarioSpec / ScenarioResult / ReplayInfo semantics."""

import dataclasses

import pytest

from repro.api import ReplayInfo, ScenarioSpec, run
from repro.collectives import RingBroadcast
from repro.faults import Repeel
from repro.sim import SimConfig
from repro.topology import LeafSpine
from repro.workloads import generate_jobs


@pytest.fixture
def setup():
    topo = LeafSpine(2, 4, 2)
    jobs = generate_jobs(
        topo, 2, num_gpus=6, message_bytes=2**18, gpus_per_host=1, seed=3
    )
    return topo, jobs


class TestScenarioSpec:
    def test_frozen(self, setup):
        topo, jobs = setup
        spec = ScenarioSpec(topology=topo, scheme="peel", jobs=tuple(jobs))
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.scheme = "ring"

    def test_jobs_coerced_to_tuple(self, setup):
        topo, jobs = setup
        spec = ScenarioSpec(topology=topo, scheme="peel", jobs=jobs)
        assert isinstance(spec.jobs, tuple)
        assert spec.jobs == tuple(jobs)

    def test_scheme_name_from_string(self, setup):
        topo, jobs = setup
        spec = ScenarioSpec(topology=topo, scheme="peel", jobs=tuple(jobs))
        assert spec.scheme_name == "peel"

    def test_scheme_name_from_instance(self, setup):
        topo, jobs = setup
        spec = ScenarioSpec(
            topology=topo, scheme=RingBroadcast(), jobs=tuple(jobs)
        )
        assert spec.scheme_name == "ring"

    def test_replace_builds_variants(self, setup):
        topo, jobs = setup
        spec = ScenarioSpec(topology=topo, scheme="peel", jobs=tuple(jobs))
        other = dataclasses.replace(spec, scheme="ring", record_trace=True)
        assert other.scheme == "ring"
        assert other.record_trace
        assert spec.scheme == "peel"  # original untouched


class TestRun:
    def test_result_carries_replay_info(self, setup):
        topo, jobs = setup
        result = run(
            ScenarioSpec(topology=topo, scheme="peel", jobs=tuple(jobs))
        )
        assert isinstance(result.replay, ReplayInfo)
        assert result.replay.resumed is False
        assert result.replay.resumed_at_s is None
        assert result.replay.snapshots_taken == 0
        assert result.replay.events_processed > 0
        assert result.replay.event_digest is None  # not requested

    def test_event_digest_on_request(self, setup):
        topo, jobs = setup
        spec = ScenarioSpec(
            topology=topo, scheme="peel", jobs=tuple(jobs), event_digest=True
        )
        a = run(spec)
        b = run(spec)
        assert a.replay.event_digest
        assert a.replay.event_digest == b.replay.event_digest

    def test_typed_result_fields(self, setup):
        topo, jobs = setup
        result = run(
            ScenarioSpec(
                topology=topo,
                scheme="peel",
                jobs=tuple(jobs),
                config=SimConfig(),
                check_invariants=True,
            )
        )
        assert result.invariant_violations == []
        assert result.repeels == []
        assert all(isinstance(r, Repeel) for r in result.repeels)
        assert len(result.ccts) == len(jobs)
        assert result.stats.mean_s > 0

    def test_max_events_budget(self, setup):
        topo, jobs = setup
        with pytest.raises(RuntimeError, match="never completed"):
            run(
                ScenarioSpec(
                    topology=topo, scheme="peel", jobs=tuple(jobs),
                    max_events=3,
                )
            )


class TestRepeelCompat:
    def test_repeel_is_a_tuple(self):
        r = Repeel(1.5e-3, "peel-1", ("spine:0", "leaf:1"))
        assert r == (1.5e-3, "peel-1", ("spine:0", "leaf:1"))
        time_s, transfer, link = r
        assert (time_s, transfer, link) == (r.time_s, r.transfer, r.link)
