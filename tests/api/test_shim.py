"""The deprecated ``run_broadcast_scenario`` shim is byte-identical to
``repro.api.run`` — serially and through a ``run_sweep`` worker pool.

The serving golden scenario lives in :class:`repro.serve.ServeRuntime`
(the shim never covered it); the broadcast-side golden scenarios plus a
third mixed-scheme batch stand in for full coverage here.
"""

import warnings

import pytest

import repro.api as api
from repro.api import ScenarioSpec
from repro.experiments.parallel import SweepPoint, run_sweep
from repro.experiments.runner import run_broadcast_scenario
from repro.experiments.scenarios import fault_scenario, headline_scenario
from repro.experiments.common import sim_config
from repro.topology import LeafSpine
from repro.workloads import generate_jobs

SCENARIOS = ("headline", "fault", "mixed")


def _build(name: str) -> ScenarioSpec:
    if name == "headline":
        return headline_scenario()[0]
    if name == "fault":
        return fault_scenario()[0]
    topo = LeafSpine(2, 4, 2)
    jobs = generate_jobs(
        topo, 4, 4, 128 * 1024, offered_load=0.5, gpus_per_host=1, seed=7
    )
    return ScenarioSpec(
        topology=topo,
        scheme="optimal",
        jobs=tuple(jobs),
        config=sim_config(128 * 1024, seed=7),
        record_trace=True,
    )


def _fingerprint(name: str, via: str) -> tuple:
    """Everything a ScenarioResult reports, as one comparable value.

    Module-level so ``run_sweep`` can pickle a reference to it.
    """
    spec = _build(name)
    if via == "shim":
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = run_broadcast_scenario(
                spec.topology,
                spec.scheme,
                list(spec.jobs),
                spec.config,
                check_invariants=spec.check_invariants,
                fault_schedule=spec.fault_schedule,
                record_trace=spec.record_trace,
            )
    else:
        result = api.run(spec)
    return (
        result.scheme,
        tuple(result.ccts),
        result.total_bytes,
        result.wasted_bytes,
        result.pfc_pause_events,
        result.failure_drops,
        result.trace_digest,
        tuple(result.repeels),
        len(result.invariant_violations),
    )


class TestShimIdentity:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_serial_byte_identity(self, name):
        assert _fingerprint(name, "shim") == _fingerprint(name, "api")

    def test_sweep_byte_identity(self):
        """Both entry points agree when fanned out across 4 workers."""
        points = [
            SweepPoint(_fingerprint, {"name": n, "via": via}, f"{n}/{via}")
            for n in SCENARIOS
            for via in ("shim", "api")
        ]
        results = run_sweep(points, jobs=4)
        by_key = {
            (p.kwargs["name"], p.kwargs["via"]): r
            for p, r in zip(points, results)
        }
        for name in SCENARIOS:
            assert by_key[name, "shim"] == by_key[name, "api"], name
            # ...and the pool run matches the in-process run.
            assert by_key[name, "api"] == _fingerprint(name, "api"), name


class TestDeprecation:
    def test_single_deprecation_warning(self):
        spec = _build("headline")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_broadcast_scenario(
                spec.topology, spec.scheme, list(spec.jobs), spec.config
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.api" in str(deprecations[0].message)

    def test_shim_reexports_match_api(self):
        from repro.experiments import runner

        assert runner.ScenarioSpec is api.ScenarioSpec
        assert runner.ScenarioResult is api.ScenarioResult
        assert runner.segment_bytes_for is api.segment_bytes_for
        assert runner.MIN_SEGMENT_BYTES == api.MIN_SEGMENT_BYTES
