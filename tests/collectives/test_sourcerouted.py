"""Source-routed schemes: header budgets, strip maps, state accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec, run
from repro.collectives import (
    BertBroadcast,
    CollectiveEnv,
    ElmoBroadcast,
    Gpu,
    Group,
)
from repro.collectives.multicast import _steiner_tree
from repro.faults import FaultSchedule
from repro.sim import SimConfig
from repro.topology import FatTree
from repro.topology.addressing import NodeKind, kind_of

KB = 1024
MSG = 256 * KB


def fresh_env(k=4, hosts_per_tor=2):
    return CollectiveEnv(
        FatTree(k, hosts_per_tor=hosts_per_tor),
        SimConfig(segment_bytes=64 * KB),
    )


def group_of(env, hosts):
    members = tuple(Gpu(h, 0) for h in hosts)
    return Group(members[0], members)


@st.composite
def host_subsets(draw):
    """A source plus 2–7 receivers on the 16-host FatTree(4)."""
    topo = FatTree(4, hosts_per_tor=2)
    hosts = sorted(topo.hosts)
    size = draw(st.integers(min_value=3, max_value=8))
    picked = draw(
        st.lists(
            st.sampled_from(hosts), min_size=size, max_size=size, unique=True
        )
    )
    return picked


class TestHeaderBudget:
    @given(hosts=host_subsets(), budget=st.sampled_from((8, 16, 64)))
    @settings(max_examples=25, deadline=None)
    def test_elmo_encoding_respects_budget(self, hosts, budget):
        env = fresh_env()
        tree = _steiner_tree(env, hosts[0], hosts[1:])
        enc = ElmoBroadcast(header_bytes=budget)._encode(env, tree, "g")
        assert enc.header_bytes <= budget
        # Whatever was packed strips to zero by the leaves.
        assert sum(enc.strip_bytes.values()) == enc.header_bytes
        # Every forwarding switch is either in the header or an s-rule.
        switches = {
            n for n in tree.children_map
            if kind_of(n) is not NodeKind.HOST and tree.children_map[n]
        }
        assert switches == set(enc.strip_bytes) | set(enc.demand)

    @given(hosts=host_subsets())
    @settings(max_examples=25, deadline=None)
    def test_bert_labels_cover_tree_with_zero_state(self, hosts):
        env = fresh_env()
        tree = _steiner_tree(env, hosts[0], hosts[1:])
        enc = BertBroadcast()._encode(env, tree, "g")
        assert enc.header_bytes > 0
        assert sum(enc.strip_bytes.values()) == enc.header_bytes
        assert enc.demand == {}

    def test_elmo_tiny_budget_falls_back_to_s_rules(self):
        env = fresh_env()
        hosts = sorted(env.topo.hosts)[:8]
        tree = _steiner_tree(env, hosts[0], hosts[1:])
        enc = ElmoBroadcast(header_bytes=2)._encode(env, tree, "g")
        assert enc.demand, "a 2-byte budget cannot hold the whole tree"
        assert all(keys == [("group", "g")] for keys in enc.demand.values())


def scenario(scheme, fault_schedule=None, hosts_n=6):
    topo = FatTree(4, hosts_per_tor=2)
    hosts = sorted(topo.hosts)[:hosts_n]
    members = tuple(Gpu(h, 0) for h in hosts)
    from repro.workloads import CollectiveJob

    job = CollectiveJob(0.0, Group(members[0], members), MSG)
    return ScenarioSpec(
        topology=topo,
        scheme=scheme,
        jobs=(job,),
        config=SimConfig(segment_bytes=64 * KB),
        check_invariants=True,
        fault_schedule=fault_schedule,
    )


def tree_fault(spec):
    """A schedule killing one switch-switch edge of the job's own tree."""
    env = CollectiveEnv(spec.topology, spec.config)
    group = spec.jobs[0].group
    receivers = [g.host for g in group.members if g.host != group.source.host]
    tree = _steiner_tree(env, group.source.host, receivers)
    for child, parent in sorted(tree.parent.items()):
        if kind_of(child) is not NodeKind.HOST:
            return FaultSchedule().link_down(parent, child, 1e-5)
    raise AssertionError("tree has no switch-switch edge")


class TestExactlyOnce:
    @given(scheme=st.sampled_from(("elmo", "bert", "rsbf", "lipsin",
                                   "ip-multicast", "elmo:header_bytes=4")))
    @settings(max_examples=6, deadline=None)
    def test_fault_recovery_delivers_exactly_once(self, scheme):
        spec = scenario(scheme)
        faulted = ScenarioSpec(
            **{
                **{f.name: getattr(spec, f.name)
                   for f in spec.__dataclass_fields__.values()},
                "fault_schedule": tree_fault(spec),
            }
        )
        result = run(faulted)
        # check_invariants=True makes the byte-conservation ledger fatal:
        # duplicate or lost segments (including mis-stripped headers on
        # repair paths) would have raised before we get here.
        assert len(result.ccts) == 1 and result.ccts[0] > 0
        assert len(result.repeels) >= 1


class TestHeaderCharging:
    def test_headers_inflate_fabric_bytes(self):
        # Same trees, same jobs: LIPSIN pays 32 B per segment on every
        # hop, IP multicast pays nothing (its cost is TCAM state).
        lipsin = run(scenario("lipsin"))
        ipmc = run(scenario("ip-multicast"))
        assert lipsin.header_overhead_bytes > 0
        assert ipmc.header_overhead_bytes == 0
        assert lipsin.total_bytes > ipmc.total_bytes

    def test_state_axis(self):
        bert = run(scenario("bert"))
        ipmc = run(scenario("ip-multicast"))
        assert bert.per_group_tcam_peak == 0
        assert ipmc.per_group_tcam_peak > 0
