"""AllReduce: ring and PEEL-allgather variants."""

import pytest

from repro.collectives import CollectiveEnv, Gpu, Group, scheme_by_name, shard_bytes
from repro.sim import SimConfig
from repro.topology import FatTree, LeafSpine

MSG = 16 * 2**20


def group_of(topo, n):
    hosts = sorted(topo.hosts)[:n]
    gpus = tuple(Gpu(h, 0) for h in hosts)
    return Group(gpus[0], gpus)


class TestCompletion:
    @pytest.mark.parametrize("name", ["allreduce-ring", "allreduce-peel"])
    def test_completes(self, name):
        topo = LeafSpine(4, 8, 2)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        handle = scheme_by_name(name).launch(env, group_of(topo, 8), MSG, 0.0)
        env.run()
        assert handle.complete

    @pytest.mark.parametrize("name", ["allreduce-ring", "allreduce-peel"])
    def test_every_host_finishes(self, name):
        topo = FatTree(4)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        group = group_of(topo, 6)
        handle = scheme_by_name(name).launch(env, group, MSG, 0.0)
        env.run()
        assert handle.complete
        assert set(handle.host_done_at) == set(group.hosts)

    @pytest.mark.parametrize("name", ["allreduce-ring", "allreduce-peel"])
    def test_single_host_trivial(self, name):
        topo = LeafSpine(2, 2, 2)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        handle = scheme_by_name(name).launch(env, group_of(topo, 1), MSG, 0.0)
        env.run()
        assert handle.complete


class TestShape:
    def test_cct_floor_two_phases(self):
        """AllReduce moves ~2(N-1)/N of the message per NIC; CCT must be at
        least two phase serializations of a shard chain."""
        topo = LeafSpine(4, 8, 2)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        group = group_of(topo, 8)
        n = len(group.hosts)
        handle = scheme_by_name("allreduce-ring").launch(env, group, MSG, 0.0)
        env.run()
        shard = shard_bytes(MSG, n)
        floor = 2 * (n - 1) * shard * 8 / topo.link_bps
        assert handle.cct_s >= 0.8 * floor

    def test_peel_variant_moves_fewer_bytes(self):
        topo = FatTree(8, hosts_per_tor=4)
        totals = {}
        for name in ("allreduce-ring", "allreduce-peel"):
            env = CollectiveEnv(topo, SimConfig(segment_bytes=262144))
            handle = scheme_by_name(name).launch(
                env, group_of(topo, 16), 64 * 2**20, 0.0
            )
            env.run()
            assert handle.complete
            totals[name] = env.network.total_bytes_sent()
        assert totals["allreduce-peel"] < totals["allreduce-ring"]

    def test_reduce_scatter_precedes_allgather(self):
        """No shard may finish its broadcast before its owner finished the
        reduce-scatter chain: completion times must exceed one phase."""
        topo = LeafSpine(4, 4, 2)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        group = group_of(topo, 6)
        n = len(group.hosts)
        handle = scheme_by_name("allreduce-peel").launch(env, group, MSG, 0.0)
        env.run()
        shard = shard_bytes(MSG, n)
        one_phase = (n - 1) * shard * 8 / topo.link_bps
        assert min(handle.host_done_at.values()) >= 0.8 * one_phase
