"""PEEL broadcast mode interactions: static, refined, budget-bounded."""

import random

import pytest

from repro.collectives import CollectiveEnv, Gpu, Group, PeelBroadcast
from repro.core import ControllerModel
from repro.sim import SimConfig
from repro.topology import FatTree
from repro.workloads import place_job

MSG = 16 * 2**20


def make_env(controller=None, **cfg):
    defaults = dict(segment_bytes=262144)
    defaults.update(cfg)
    return CollectiveEnv(
        FatTree(8, hosts_per_tor=4), SimConfig(**defaults), controller=controller
    )


def spanning_group(env, n=24, seed=3):
    return place_job(env.topo, n, gpus_per_host=1, rng=random.Random(seed))


class TestBudgetedPeel:
    def test_bounded_scheme_delivers(self):
        env = make_env()
        group = spanning_group(env)
        scheme = PeelBroadcast(max_prefixes_per_fanout=1)
        handle = scheme.launch(env, group, MSG, 0.0)
        env.run()
        assert handle.complete

    def test_bounded_scheme_may_waste_bytes(self):
        """With a 1-prefix budget, over-covered ToRs discard traffic that
        shows up in the fabric's wasted-bytes counter."""
        env = make_env()
        # A fragmented group: first host of several scattered racks.
        hosts = [
            "host:p0:t0:0", "host:p1:t0:0", "host:p1:t3:0", "host:p2:t1:0",
        ]
        gpus = tuple(Gpu(h, 0) for h in hosts)
        scheme = PeelBroadcast(max_prefixes_per_fanout=1)
        handle = scheme.launch(env, Group(gpus[0], gpus), MSG, 0.0)
        env.run()
        assert handle.complete
        assert env.network.wasted_bytes > 0


class TestRefinementTiming:
    def test_fast_controller_converges_to_refined(self):
        ctrl = ControllerModel(mean_s=0.0, std_s=0.0)
        env = make_env(controller=ctrl)
        group = spanning_group(env)
        handle = PeelBroadcast(programmable_cores=True).launch(env, group, MSG, 0.0)
        env.run()
        plan = env.peel().plan(group.source.host, group.receiver_hosts)
        src_port = env.network.ports[
            group.source.host, env.topo.tor_of(group.source.host)
        ]
        # Single copy up: the source NIC carried exactly the message.
        assert handle.complete
        assert src_port.bytes_sent == MSG
        assert plan.num_prefixes >= 1

    def test_slow_controller_never_refines(self):
        ctrl = ControllerModel(mean_s=10.0, std_s=0.0)
        env = make_env(controller=ctrl)
        group = spanning_group(env)
        handle = PeelBroadcast(programmable_cores=True).launch(env, group, MSG, 0.0)
        env.run(until=1.0)
        plan = env.peel().plan(group.source.host, group.receiver_hosts)
        src_port = env.network.ports[
            group.source.host, env.topo.tor_of(group.source.host)
        ]
        assert handle.complete
        assert src_port.bytes_sent == MSG * len(plan.static_trees)

    @pytest.mark.parametrize("mean_ms", [0.5, 2.0])
    def test_mid_message_switch_bytes_between_extremes(self, mean_ms):
        ctrl = ControllerModel(mean_s=mean_ms * 1e-3, std_s=0.0)
        env = make_env(controller=ctrl)
        group = spanning_group(env)
        plan = env.peel().plan(group.source.host, group.receiver_hosts)
        if len(plan.static_trees) < 2:
            pytest.skip("group landed on one aligned prefix")
        handle = PeelBroadcast(programmable_cores=True).launch(env, group, MSG, 0.0)
        env.run(until=2.0)
        assert handle.complete
        src_port = env.network.ports[
            group.source.host, env.topo.tor_of(group.source.host)
        ]
        assert MSG <= src_port.bytes_sent <= MSG * len(plan.static_trees)
