"""CollectiveEnv wiring: planner caching, naming, controller injection."""

import random

from repro.core import ControllerModel
from repro.collectives import CollectiveEnv
from repro.sim import SimConfig
from repro.topology import LeafSpine


class TestEnv:
    def test_peel_planner_cached_per_budget(self):
        env = CollectiveEnv(LeafSpine(2, 4, 2))
        assert env.peel() is env.peel()
        assert env.peel(2) is env.peel(2)
        assert env.peel() is not env.peel(2)

    def test_transfer_names_unique(self):
        env = CollectiveEnv(LeafSpine(2, 2, 2))
        names = {env.next_transfer_name("x") for _ in range(100)}
        assert len(names) == 100

    def test_custom_controller_used(self):
        ctrl = ControllerModel(mean_s=0.5, std_s=0.0, rng=random.Random(0))
        env = CollectiveEnv(LeafSpine(2, 2, 2), controller=ctrl)
        assert env.controller.setup_delay() == 0.5

    def test_default_controller_seeded_from_config(self):
        a = CollectiveEnv(LeafSpine(2, 2, 2), SimConfig(seed=3))
        b = CollectiveEnv(LeafSpine(2, 2, 2), SimConfig(seed=3))
        assert a.controller.setup_delay() == b.controller.setup_delay()

    def test_run_drains_events(self):
        env = CollectiveEnv(LeafSpine(2, 2, 2))
        hits = []
        env.sim.schedule(0.1, hits.append, 1)
        assert env.run() == 1
        assert hits == [1]

    def test_network_shares_simulator(self):
        env = CollectiveEnv(LeafSpine(2, 2, 2))
        assert env.network.sim is env.sim
