"""Scheme registry: SchemeSpec value semantics, aliases, resolution."""

import pickle
import warnings

import pytest

from repro.collectives import (
    ElmoBroadcast,
    PeelBroadcast,
    SchemeSpec,
    registered_schemes,
    reset_alias_warnings,
    resolve_scheme,
    scheme_aliases,
    scheme_by_name,
)


class TestSchemeSpec:
    def test_frozen(self):
        spec = SchemeSpec("elmo", header_bytes=64)
        with pytest.raises(AttributeError):
            spec.name = "bert"
        with pytest.raises(AttributeError):
            del spec.name

    def test_value_semantics(self):
        a = SchemeSpec("elmo", header_bytes=64)
        b = SchemeSpec("elmo", header_bytes=64)
        assert a == b and hash(a) == hash(b)
        assert a != SchemeSpec("elmo", header_bytes=32)
        assert a != SchemeSpec("bert", header_bytes=64)

    def test_params_canonically_sorted(self):
        # Keyword order never matters: equal specs stringify identically.
        a = SchemeSpec("x", b=2, a=1)
        b = SchemeSpec("x", a=1, b=2)
        assert a == b and str(a) == str(b) == "x:a=1,b=2"

    def test_str_parse_round_trip(self):
        for spec in (
            SchemeSpec("peel"),
            SchemeSpec("elmo", header_bytes=64),
            SchemeSpec("rsbf", fpr=0.01),
            SchemeSpec("peel", programmable_cores=True),
        ):
            assert SchemeSpec.parse(str(spec)) == spec

    def test_parse_value_types(self):
        spec = SchemeSpec.parse("x:i=3,f=0.5,t=true,n=false,s=abc")
        assert spec.kwargs == {
            "i": 3, "f": 0.5, "t": True, "n": False, "s": "abc"
        }

    def test_parse_rejects_malformed_params(self):
        with pytest.raises(ValueError, match="param=value"):
            SchemeSpec.parse("elmo:header_bytes")

    def test_pickle_round_trip(self):
        spec = SchemeSpec("elmo", header_bytes=64)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and hash(clone) == hash(spec)
        assert str(clone) == "elmo:header_bytes=64"


class TestResolution:
    def test_unknown_scheme_names_the_registry(self):
        with pytest.raises(ValueError, match="scheme registry"):
            resolve_scheme("carrier-pigeon")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            resolve_scheme(SchemeSpec("elmo", header_bites=64))

    def test_every_registered_scheme_constructs(self):
        for name in registered_schemes():
            scheme = resolve_scheme(name)
            assert scheme.name  # constructed, self-describing

    def test_spec_params_reach_the_constructor(self):
        scheme = resolve_scheme(SchemeSpec("elmo", header_bytes=16))
        assert isinstance(scheme, ElmoBroadcast)
        assert scheme.header_bytes == 16

    def test_instance_passes_through(self):
        scheme = ElmoBroadcast(header_bytes=8)
        assert resolve_scheme(scheme) is scheme

    def test_scheme_by_name_is_the_registry(self):
        assert isinstance(scheme_by_name("peel"), PeelBroadcast)
        with pytest.raises(ValueError, match="scheme registry"):
            scheme_by_name("carrier-pigeon")


class TestAliases:
    def test_legacy_spellings_resolve_equivalently(self):
        aliases = scheme_aliases()
        assert aliases["peel+cores"] == SchemeSpec(
            "peel", programmable_cores=True
        )
        assert aliases["orca-nosetup"] == SchemeSpec(
            "orca", controller_overhead=False
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert resolve_scheme("peel+cores").programmable_cores
            assert not resolve_scheme("orca-nosetup").controller_overhead

    def test_alias_warns_exactly_once_per_process(self):
        reset_alias_warnings()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                resolve_scheme("peel+cores")
                resolve_scheme("peel+cores")
            deprecations = [
                w for w in caught
                if issubclass(w.category, DeprecationWarning)
                and "peel+cores" in str(w.message)
            ]
            assert len(deprecations) == 1
        finally:
            reset_alias_warnings()

    def test_canonical_names_never_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_scheme("peel")
            resolve_scheme(SchemeSpec("elmo", header_bytes=64))
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestRegistryContents:
    def test_source_routed_schemes_registered(self):
        names = registered_schemes()
        for name in ("elmo", "bert", "rsbf", "lipsin", "ip-multicast"):
            assert name in names

    def test_aliases_are_not_registered_names(self):
        names = registered_schemes()
        for alias in scheme_aliases():
            assert alias not in names
