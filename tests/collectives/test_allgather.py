"""Allgather collectives: correctness and bandwidth shape."""

import pytest

from repro.collectives import (
    CollectiveEnv,
    Gpu,
    Group,
    PeelAllgather,
    RingAllgather,
    scheme_by_name,
    shard_bytes,
)
from repro.sim import SimConfig
from repro.topology import FatTree, LeafSpine

MSG = 8 * 2**20


def group_of(topo, n):
    hosts = sorted(topo.hosts)[:n]
    gpus = tuple(Gpu(h, 0) for h in hosts)
    return Group(gpus[0], gpus)


class TestShardMath:
    def test_even_split(self):
        assert shard_bytes(1024, 4) == 256

    def test_rounds_up(self):
        assert shard_bytes(1000, 3) == 334

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            shard_bytes(1000, 0)


class TestCompletion:
    @pytest.mark.parametrize("name", ["allgather-ring", "allgather-peel"])
    def test_completes_on_leafspine(self, name):
        topo = LeafSpine(4, 8, 2)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        handle = scheme_by_name(name).launch(env, group_of(topo, 8), MSG, 0.0)
        env.run()
        assert handle.complete
        assert handle.cct_s > 0

    @pytest.mark.parametrize("name", ["allgather-ring", "allgather-peel"])
    def test_completes_on_fattree(self, name):
        topo = FatTree(4)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        handle = scheme_by_name(name).launch(env, group_of(topo, 6), MSG, 0.0)
        env.run()
        assert handle.complete

    @pytest.mark.parametrize("name", ["allgather-ring", "allgather-peel"])
    def test_single_host_trivial(self, name):
        topo = LeafSpine(2, 2, 2)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        handle = scheme_by_name(name).launch(env, group_of(topo, 1), MSG, 0.0)
        env.run()
        assert handle.complete

    def test_every_host_must_finish(self):
        """The source's host receives too (unlike Broadcast)."""
        topo = LeafSpine(2, 4, 2)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        group = group_of(topo, 5)
        handle = RingAllgather().launch(env, group, MSG, 0.0)
        assert group.hosts[0] in handle.pending_hosts
        env.run()
        assert handle.complete
        assert set(handle.host_done_at) == set(group.hosts)


class TestBandwidthShape:
    def test_peel_moves_fewer_bytes(self):
        topo = FatTree(8, hosts_per_tor=4)
        results = {}
        for name in ("allgather-ring", "allgather-peel"):
            env = CollectiveEnv(topo, SimConfig(segment_bytes=262144))
            handle = scheme_by_name(name).launch(env, group_of(topo, 16), 64 * 2**20, 0.0)
            env.run()
            assert handle.complete
            results[name] = env.network.total_bytes_sent()
        assert results["allgather-peel"] < 0.7 * results["allgather-ring"]

    def test_cct_scales_with_message(self):
        topo = LeafSpine(4, 4, 2)
        ccts = []
        for msg in (2 * 2**20, 8 * 2**20):
            env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
            handle = PeelAllgather().launch(env, group_of(topo, 8), msg, 0.0)
            env.run()
            ccts.append(handle.cct_s)
        assert ccts[1] > 2 * ccts[0]
