"""Group/handle semantics and locality ordering."""

import pytest

from repro.collectives import CollectiveHandle, Gpu, Group, locality_key
from repro.collectives.base import nccl_chunk_bytes


def make_group():
    gpus = (
        Gpu("host:p0:t0:0", 0),
        Gpu("host:p0:t0:0", 1),
        Gpu("host:p0:t1:0", 0),
        Gpu("host:p1:t0:0", 0),
    )
    return Group(source=gpus[0], members=gpus)


class TestGroup:
    def test_source_must_be_member(self):
        with pytest.raises(ValueError):
            Group(source=Gpu("host:p0:t0:0", 0), members=(Gpu("host:p0:t0:0", 1),))

    def test_hosts_deduped_and_ordered(self):
        group = make_group()
        assert group.hosts == ["host:p0:t0:0", "host:p0:t1:0", "host:p1:t0:0"]

    def test_receiver_hosts_exclude_source(self):
        group = make_group()
        assert group.receiver_hosts == ["host:p0:t1:0", "host:p1:t0:0"]

    def test_gpus_on(self):
        group = make_group()
        assert len(group.gpus_on("host:p0:t0:0")) == 2
        assert group.gpus_on("host:p9:t0:0") == []

    def test_size(self):
        assert make_group().size == 4


class TestLocalityKey:
    def test_orders_pod_major(self):
        hosts = ["host:p1:t0:0", "host:p0:t1:0", "host:p0:t0:1", "host:p0:t0:0"]
        ordered = sorted(hosts, key=locality_key)
        assert ordered == [
            "host:p0:t0:0",
            "host:p0:t0:1",
            "host:p0:t1:0",
            "host:p1:t0:0",
        ]

    def test_numeric_not_lexicographic(self):
        # pod 10 sorts after pod 2 (string sort would invert them).
        assert locality_key("host:p10:t0:0") > locality_key("host:p2:t0:0")

    def test_leafspine_hosts(self):
        assert locality_key("host:l3:1") < locality_key("host:l10:0")


class TestCollectiveHandle:
    def test_completes_when_all_hosts_done(self):
        group = make_group()
        handle = CollectiveHandle("x", group, 1000, arrival_s=1.0, nvlink_s=0.001)
        assert not handle.complete
        handle.host_done("host:p0:t1:0", 1.5)
        assert not handle.complete
        handle.host_done("host:p1:t0:0", 2.0)
        assert handle.complete
        assert handle.cct_s == pytest.approx(1.0 + 0.001)

    def test_ignores_unknown_host(self):
        handle = CollectiveHandle("x", make_group(), 1000, 0.0, 0.0)
        handle.host_done("host:p7:t0:0", 5.0)
        assert not handle.complete

    def test_duplicate_done_is_idempotent(self):
        handle = CollectiveHandle("x", make_group(), 1000, 0.0, 0.0)
        handle.host_done("host:p0:t1:0", 1.0)
        handle.host_done("host:p0:t1:0", 2.0)
        assert handle.host_done_at["host:p0:t1:0"] == 1.0

    def test_source_only_group_completes_immediately(self):
        gpus = (Gpu("host:l0:0", 0), Gpu("host:l0:0", 1))
        group = Group(source=gpus[0], members=gpus)
        handle = CollectiveHandle("x", group, 1000, 3.0, nvlink_s=0.002)
        assert handle.complete
        assert handle.cct_s == pytest.approx(0.002)

    def test_cct_before_completion_raises(self):
        handle = CollectiveHandle("x", make_group(), 1000, 0.0, 0.0)
        with pytest.raises(RuntimeError):
            _ = handle.cct_s


class TestChunking:
    def test_eighth_of_message(self):
        assert nccl_chunk_bytes(8 * 2**20, 1500) == 2**20

    def test_floor_at_mtu(self):
        assert nccl_chunk_bytes(4000, 1500) == 1500

    def test_rounds_up(self):
        assert nccl_chunk_bytes(100_001, 1500) == 12501
