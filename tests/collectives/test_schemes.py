"""Every broadcast scheme: delivery correctness and structural properties."""

import pytest

from repro.collectives import (
    BinaryTreeBroadcast,
    CollectiveEnv,
    Gpu,
    Group,
    OptimalBroadcast,
    OrcaBroadcast,
    PeelBroadcast,
    RingBroadcast,
    scheme_by_name,
)
from repro.sim import SimConfig
from repro.topology import FatTree, LeafSpine, asymmetric

MSG = 2 * 2**20

ALL_SCHEMES = ["ring", "tree", "optimal", "orca", "orca-nosetup", "peel", "peel+cores"]


def group_on(topo, hosts, gpus_per_host=2):
    gpus = tuple(Gpu(h, i) for h in hosts for i in range(gpus_per_host))
    return Group(source=gpus[0], members=gpus)


@pytest.fixture
def env():
    return CollectiveEnv(LeafSpine(4, 8, 2), SimConfig(segment_bytes=65536))


class TestAllSchemesDeliver:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_delivers_leafspine(self, name, env):
        hosts = [h for h in sorted(env.topo.hosts)][:8]
        group = group_on(env.topo, hosts)
        handle = scheme_by_name(name).launch(env, group, MSG, arrival_s=0.0)
        env.run()
        assert handle.complete, name
        assert handle.cct_s > 0

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_delivers_fattree(self, name):
        env = CollectiveEnv(FatTree(4), SimConfig(segment_bytes=65536))
        hosts = env.topo.hosts[:6]
        group = group_on(env.topo, hosts)
        handle = scheme_by_name(name).launch(env, group, MSG, arrival_s=0.0)
        env.run()
        assert handle.complete, name

    @pytest.mark.parametrize("name", ["ring", "tree", "peel"])
    def test_delivers_on_asymmetric_fabric(self, name):
        topo, _ = asymmetric(LeafSpine(4, 8, 2), 0.2, seed=4)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        group = group_on(topo, topo.hosts[:8])
        handle = scheme_by_name(name).launch(env, group, MSG, arrival_s=0.0)
        env.run()
        assert handle.complete, name

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_single_host_group_is_nvlink_only(self, name, env):
        host = env.topo.hosts[0]
        group = group_on(env.topo, [host], gpus_per_host=8)
        handle = scheme_by_name(name).launch(env, group, MSG, arrival_s=0.0)
        env.run()
        assert handle.complete
        assert handle.cct_s == pytest.approx(MSG / env.config.nvlink_bytes_per_s)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            scheme_by_name("carrier-pigeon")


class TestRingStructure:
    def test_each_receiver_fed_by_one_unicast(self, env):
        group = group_on(env.topo, env.topo.hosts[:5])
        RingBroadcast().launch(env, group, MSG, 0.0)
        env.run()
        # Ring of 5 hosts => 4 hops: total bytes = 4 paths x path length.
        total = env.network.total_bytes_sent()
        assert total >= MSG * 4 * 2  # every hop at least 2 links

    def test_ring_bytes_scale_with_group(self):
        sizes = []
        for n in (3, 6):
            env = CollectiveEnv(LeafSpine(4, 8, 2), SimConfig(segment_bytes=65536))
            group = group_on(env.topo, env.topo.hosts[:n])
            RingBroadcast().launch(env, group, MSG, 0.0)
            env.run()
            sizes.append(env.network.total_bytes_sent())
        assert sizes[1] > sizes[0] * 1.5


class TestTreeStructure:
    def test_internal_hosts_relay_twice(self, env):
        group = group_on(env.topo, env.topo.hosts[:7])
        BinaryTreeBroadcast().launch(env, group, MSG, 0.0)
        env.run()
        # 6 receivers -> 6 unicasts; source sends 2 of them itself.
        src_uplink = env.network.ports[
            group.source.host, env.topo.tor_of(group.source.host)
        ]
        assert src_uplink.bytes_sent == 2 * MSG


class TestMulticastSchemes:
    def test_optimal_single_copy_per_link(self, env):
        group = group_on(env.topo, env.topo.hosts[:8])
        OptimalBroadcast().launch(env, group, MSG, 0.0)
        env.run()
        loads = [v for v in env.network.link_bytes().values() if v]
        assert all(v == MSG for v in loads)

    def test_peel_static_at_most_prefix_copies(self, env):
        group = group_on(env.topo, env.topo.hosts[:8])
        plan = env.peel().plan(group.source.host, group.receiver_hosts)
        PeelBroadcast().launch(env, group, MSG, 0.0)
        env.run()
        src_uplink = env.network.ports[
            group.source.host, env.topo.tor_of(group.source.host)
        ]
        assert src_uplink.bytes_sent == MSG * max(1, len(plan.static_trees))

    def test_peel_cores_converges_to_single_copy(self):
        """With a zero-latency controller the refined mode engages at t=0,
        so the source sends one copy, like optimal."""
        from repro.core import ControllerModel

        env = CollectiveEnv(
            LeafSpine(4, 8, 2),
            SimConfig(segment_bytes=65536),
            controller=ControllerModel(mean_s=0.0, std_s=0.0),
        )
        group = group_on(env.topo, env.topo.hosts[:8])
        PeelBroadcast(programmable_cores=True).launch(env, group, MSG, 0.0)
        env.run()
        src_uplink = env.network.ports[
            group.source.host, env.topo.tor_of(group.source.host)
        ]
        assert src_uplink.bytes_sent == MSG


class TestOrca:
    def test_setup_delay_slows_start(self):
        ccts = {}
        for name in ("orca", "orca-nosetup"):
            env = CollectiveEnv(LeafSpine(4, 8, 2), SimConfig(segment_bytes=65536))
            group = group_on(env.topo, env.topo.hosts[:8])
            handle = scheme_by_name(name).launch(env, group, MSG, 0.0)
            env.run()
            ccts[name] = handle.cct_s
        assert ccts["orca"] > ccts["orca-nosetup"]

    def test_agent_relays_to_other_servers(self):
        env = CollectiveEnv(LeafSpine(4, 8, 2), SimConfig(segment_bytes=65536))
        # Group: source rack 0 + both hosts of rack 1; with one GPU NIC per
        # server the agent must unicast to its rack sibling through the ToR.
        hosts = ["host:l0:0", "host:l1:0", "host:l1:1"]
        group = group_on(env.topo, hosts)
        scheme = OrcaBroadcast(controller_overhead=False, gpus_per_server=1)
        handle = scheme.launch(env, group, MSG, 0.0)
        env.run()
        assert handle.complete
        agent_uplink = env.network.ports["host:l1:0", "leaf:1"]
        assert agent_uplink.bytes_sent == MSG

    def test_agent_uses_nvlink_within_server(self):
        env = CollectiveEnv(LeafSpine(4, 8, 2), SimConfig(segment_bytes=65536))
        hosts = ["host:l0:0", "host:l1:0", "host:l1:1"]
        group = group_on(env.topo, hosts)
        # Default server model: both rack-1 endpoints share one server, so
        # the sibling fills over NVLink and the agent never re-sends.
        handle = OrcaBroadcast(controller_overhead=False).launch(
            env, group, MSG, 0.0
        )
        env.run()
        assert handle.complete
        agent_uplink = env.network.ports["host:l1:0", "leaf:1"]
        assert agent_uplink.bytes_sent == 0

    def test_source_rack_has_no_trunk(self):
        env = CollectiveEnv(LeafSpine(4, 8, 2), SimConfig(segment_bytes=65536))
        hosts = ["host:l0:0", "host:l0:1"]  # same rack as the source
        group = group_on(env.topo, hosts)
        handle = OrcaBroadcast(controller_overhead=False).launch(env, group, MSG, 0.0)
        env.run()
        assert handle.complete
        spine_bytes = sum(
            p.bytes_sent
            for (u, v), p in env.network.ports.items()
            if u.startswith("spine") or v.startswith("spine")
        )
        assert spine_bytes == 0
