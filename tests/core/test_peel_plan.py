"""The PEEL planner end-to-end: packets, trees, waste, hierarchical covers."""

import pytest

from repro.core import Peel, optimal_symmetric_tree
from repro.steiner import validate_tree
from repro.topology import FatTree, LeafSpine, asymmetric


def hosts_under_pods(ft: FatTree, pods: list[int]) -> list[str]:
    return [h for h in ft.hosts if int(h.split(":")[1][1:]) in pods]


class TestLeafSpinePlans:
    def test_single_rack_group_is_local_only(self):
        ls = LeafSpine(2, 4, 4)
        peel = Peel(ls)
        plan = peel.plan("host:l0:0", ["host:l0:1", "host:l0:2"])
        assert plan.num_prefixes == 0
        assert plan.local_tree is not None
        assert plan.static_cost() == plan.local_tree.cost

    def test_broadcast_single_prefix_when_aligned(self):
        ls = LeafSpine(2, 4, 2)  # 4 leaves: ids 0-3 = full 2-bit space
        peel = Peel(ls)
        src = "host:l0:0"
        dests = [h for h in ls.hosts if h != src]
        plan = peel.plan(src, dests)
        # Remote leaves 1,2,3 + source leaf 0 is on the trunk; cover of
        # {1,2,3} = {1}, {1x} -> 2 prefixes.
        assert plan.num_prefixes == 2
        for tree in plan.static_trees:
            validate_tree(tree, ls.graph, src, [])

    def test_all_receivers_served_exactly_once(self):
        ls = LeafSpine(4, 8, 2)
        peel = Peel(ls)
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h != src]
        plan = peel.plan(src, dests)
        served: list[str] = []
        for tree in plan.static_trees:
            served.extend(
                n for n in tree.nodes if n.startswith("host") and n != src
            )
        assert sorted(served) == sorted(dests)

    def test_exact_cover_has_no_waste(self):
        ls = LeafSpine(2, 8, 2)
        plan = Peel(ls).plan(ls.hosts[0], ls.hosts[3:10])
        assert not plan.wasted_edge_switches

    def test_bounded_cover_creates_waste_or_fewer_packets(self):
        ls = LeafSpine(2, 8, 2)
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h.startswith(("host:l1", "host:l3", "host:l6"))]
        exact_plan = Peel(ls).plan(src, dests)
        bounded_plan = Peel(ls, max_prefixes_per_fanout=1).plan(src, dests)
        assert bounded_plan.num_prefixes <= exact_plan.num_prefixes
        assert bounded_plan.num_prefixes == 1
        # The single coarse prefix over-covers leaves not in the group.
        assert bounded_plan.wasted_edge_switches

    def test_header_bytes_small(self):
        ls = LeafSpine(16, 48, 2)
        plan = Peel(ls).plan(ls.hosts[0], ls.hosts[10:50])
        assert 0 < plan.header_bytes < 8


class TestFatTreeHierarchicalPlans:
    def test_single_pod_group(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = "host:p2:t0:0"
        dests = hosts_under_pods(ft, [2])
        dests.remove(src)
        plan = Peel(ft).plan(src, dests)
        # Whole pod: the source ToR folds into the cover, one prefix covers
        # all ToRs, and no core link is crossed.
        assert plan.num_prefixes == 1
        assert not any(n.startswith("core") for n in plan.packets[0].tree.nodes)

    def test_aligned_pods_share_one_packet(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = "host:p4:t0:0"
        dests = hosts_under_pods(ft, [4, 5, 6, 7])
        dests.remove(src)
        plan = Peel(ft).plan(src, dests)
        # Pods 4-7 = aligned block 1xx; all ToRs needed -> a single packet.
        assert plan.num_prefixes == 1
        packet = plan.packets[0]
        assert packet.pods == [4, 5, 6, 7] or tuple(packet.pods) == (4, 5, 6, 7)

    def test_unaligned_pods_need_more_packets(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = "host:p1:t0:0"
        dests = hosts_under_pods(ft, [1, 2, 3, 4])
        dests.remove(src)
        plan = Peel(ft).plan(src, dests)
        # Pods {1,2,3,4}: blocks {1},{2,3},{4} -> 3 packets.
        assert plan.num_prefixes == 3

    def test_static_trees_are_valid(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = "host:p0:t0:0"
        dests = hosts_under_pods(ft, [0, 1, 2])
        dests.remove(src)
        plan = Peel(ft).plan(src, dests)
        for tree in plan.static_trees:
            validate_tree(tree, ft.graph, src, [])
        served = {
            n
            for tree in plan.static_trees
            for n in tree.nodes
            if n.startswith("host") and n != src
        }
        assert served == set(dests)

    def test_refined_tree_is_base_optimal(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = "host:p0:t0:0"
        dests = hosts_under_pods(ft, [3, 4])
        plan = Peel(ft).plan(src, dests)
        expected = optimal_symmetric_tree(ft, src, dests)
        assert plan.refined_tree.cost == expected.cost

    def test_static_cost_at_least_refined(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = "host:p0:t0:0"
        dests = hosts_under_pods(ft, [1, 2, 5])
        plan = Peel(ft).plan(src, dests)
        assert plan.static_cost() >= plan.refined_cost()

    def test_partial_tors_within_pod(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = "host:p0:t0:0"
        dests = [h for h in ft.hosts if h.startswith(("host:p3:t0", "host:p3:t1"))]
        plan = Peel(ft).plan(src, dests)
        assert plan.num_prefixes == 1  # ToRs 0-1 = one aligned block
        packet = plan.packets[0]
        assert packet.prefix.length == 1

    def test_link_loads_modes(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = "host:p0:t0:0"
        dests = hosts_under_pods(ft, [1, 2])
        plan = Peel(ft).plan(src, dests)
        static = plan.link_loads("static")
        refined = plan.link_loads("refined")
        assert sum(static.values()) == plan.static_cost()
        assert sum(refined.values()) == plan.refined_cost()
        with pytest.raises(ValueError):
            plan.link_loads("bogus")

    def test_rejects_non_power_of_two_half(self):
        with pytest.raises(ValueError):
            Peel(FatTree(6))

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            Peel(FatTree(4), max_prefixes_per_fanout=0)


class TestAsymmetricPlans:
    @pytest.mark.parametrize("seed", range(5))
    def test_leafspine_failed_plan_valid(self, seed):
        topo, _ = asymmetric(LeafSpine(4, 8, 2), 0.25, seed=seed)
        peel = Peel(topo)
        src = topo.hosts[0]
        dests = topo.hosts[4:12]
        plan = peel.plan(src, dests)
        served: set[str] = set()
        for tree in plan.static_trees:
            validate_tree(tree, topo.graph, src, [])
            served |= {n for n in tree.nodes if n.startswith("host") and n != src}
        assert served == set(dests)

    def test_fattree_failed_plan_valid(self):
        topo, _ = asymmetric(FatTree(4), 0.25, seed=2)
        peel = Peel(topo)
        src = topo.hosts[0]
        dests = topo.hosts[6:14]
        plan = peel.plan(src, dests)
        served: set[str] = set()
        for tree in plan.static_trees:
            validate_tree(tree, topo.graph, src, [])
            served |= {n for n in tree.nodes if n.startswith("host") and n != src}
        assert served == set(dests)
