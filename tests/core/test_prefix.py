"""Power-of-two prefix covers: exact decomposition and bounded over-cover."""

import pytest

from repro.core import (
    Prefix,
    bounded_cover,
    cover_waste,
    covered_ids,
    exact_cover,
)


class TestPrefix:
    def test_block_full_space(self):
        assert list(Prefix(0, 0).block(3)) == list(range(8))

    def test_block_single(self):
        assert list(Prefix(5, 3).block(3)) == [5]

    def test_block_half(self):
        assert list(Prefix(1, 1).block(3)) == [4, 5, 6, 7]

    def test_covers(self):
        p = Prefix(0b01, 2)
        assert p.covers(0b010, 3)
        assert p.covers(0b011, 3)
        assert not p.covers(0b100, 3)

    def test_bitstring(self):
        assert Prefix(0b1, 1).bitstring(3) == "1**"
        assert Prefix(0b01, 2).bitstring(3) == "01*"
        assert Prefix(0, 0).bitstring(3) == "***"

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            Prefix(4, 2)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Prefix(0, -1)

    def test_block_wider_than_space(self):
        with pytest.raises(ValueError):
            Prefix(0, 4).block(3)


class TestExactCover:
    def test_paper_example(self):
        """§3.2: ToRs 010,011,100,101,110,111 -> prefixes 1** and 01*."""
        ids = {0b010, 0b011, 0b100, 0b101, 0b110, 0b111}
        cover = exact_cover(ids, 3)
        assert cover == [Prefix(0b01, 2), Prefix(0b1, 1)]

    def test_empty(self):
        assert exact_cover(set(), 4) == []

    def test_full_space_single_prefix(self):
        assert exact_cover(set(range(16)), 4) == [Prefix(0, 0)]

    def test_singleton(self):
        assert exact_cover({6}, 3) == [Prefix(6, 3)]

    def test_alternating_worst_case(self):
        ids = {0, 2, 4, 6}
        cover = exact_cover(ids, 3)
        assert len(cover) == 4
        assert all(p.length == 3 for p in cover)

    def test_exactness(self):
        ids = {1, 2, 3, 9, 10}
        cover = exact_cover(ids, 4)
        assert covered_ids(cover, 4) == ids

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            exact_cover({9}, 3)

    def test_zero_width_space(self):
        assert exact_cover({0}, 0) == [Prefix(0, 0)]


class TestBoundedCover:
    def test_budget_one_covers_everything(self):
        cover = bounded_cover({1, 6}, 3, 1)
        assert cover == [Prefix(0, 0)]
        assert cover_waste(cover, {1, 6}, 3) == 6

    def test_large_budget_matches_exact(self):
        ids = {0b010, 0b011, 0b100}
        assert bounded_cover(ids, 3, 8) == exact_cover(ids, 3)

    def test_waste_decreases_with_budget(self):
        ids = {0, 3, 5, 6}
        wastes = [
            cover_waste(bounded_cover(ids, 3, budget), ids, 3)
            for budget in (1, 2, 3, 4)
        ]
        assert wastes == sorted(wastes, reverse=True)
        assert wastes[-1] == 0

    def test_budget_respected(self):
        ids = {0, 2, 4, 6, 8, 10, 12, 14}
        for budget in (1, 2, 3):
            assert len(bounded_cover(ids, 4, budget)) <= budget

    def test_minimal_waste_choice(self):
        # {0,1,2}: budget 2 -> 0* (0,1) + prefix for 2 exactly, waste 0.
        cover = bounded_cover({0, 1, 2}, 2, 2)
        assert cover_waste(cover, {0, 1, 2}, 2) <= 1

    def test_empty_ids(self):
        assert bounded_cover(set(), 3, 2) == []

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            bounded_cover({1}, 3, 0)


class TestCoverWaste:
    def test_zero_for_exact(self):
        ids = {4, 5}
        assert cover_waste(exact_cover(ids, 3), ids, 3) == 0

    def test_counts_overcover(self):
        assert cover_waste([Prefix(0, 0)], {0}, 2) == 3

    def test_rejects_non_cover(self):
        with pytest.raises(ValueError):
            cover_waste([Prefix(0, 2)], {3}, 2)
