"""Header encoding and the <8 B size claim."""

import pytest

from repro.core import (
    PeelHeader,
    Prefix,
    header_bits,
    header_bytes,
    hierarchical_header_bits,
    hierarchical_header_bytes,
    tor_id_bits,
)


class TestSizes:
    @pytest.mark.parametrize(
        "k,expected", [(4, 1), (8, 2), (16, 3), (32, 4), (64, 5), (128, 6)]
    )
    def test_tor_id_bits(self, k, expected):
        assert tor_id_bits(k) == expected

    def test_header_bits_formula(self):
        # k=64: m=5 value bits + ceil(log2(6))=3 length bits = 8 bits.
        assert header_bits(64) == 8

    @pytest.mark.parametrize("k", [4, 8, 16, 32, 64, 128])
    def test_header_under_8_bytes(self, k):
        """§3.2: 'well under 8 B even for k=128'."""
        assert header_bytes(k) < 8

    @pytest.mark.parametrize("k", [8, 16, 32, 64, 128])
    def test_hierarchical_header_under_8_bytes(self, k):
        assert hierarchical_header_bytes(k) < 8

    def test_hierarchical_exceeds_single_tier(self):
        assert hierarchical_header_bits(64) > header_bits(64)

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            tor_id_bits(6)  # k/2 = 3 not a power of two

    def test_rejects_tiny_k(self):
        with pytest.raises(ValueError):
            tor_id_bits(1)


class TestEncodeDecode:
    @pytest.mark.parametrize("width", [1, 2, 3, 5])
    def test_roundtrip_all_prefixes(self, width):
        for length in range(width + 1):
            for value in range(1 << length):
                header = PeelHeader(Prefix(value, length), width)
                raw = header.encode()
                back = PeelHeader.decode(raw, width)
                assert back.prefix == header.prefix

    def test_encode_distinct(self):
        width = 3
        seen = set()
        for length in range(width + 1):
            for value in range(1 << length):
                raw = PeelHeader(Prefix(value, length), width).encode()
                key = (raw, length)
                assert key not in seen
                seen.add(key)

    def test_decode_rejects_overlong_length(self):
        # Length field value beyond the width is malformed (width 4 has a
        # 3-bit length field, so raw length 7 > 4 must be rejected).
        with pytest.raises(ValueError):
            PeelHeader.decode(0b111, 4)

    def test_nbytes(self):
        header = PeelHeader(Prefix(0b10, 2), 5)
        assert header.nbytes == 1
        assert header.bits == 5 + 3
