"""Layer-peeling greedy: validity, optimality on symmetric fabrics, and the
Theorem 2.5 approximation bound on asymmetric ones."""

import pytest

from repro.core import (
    layer_peeling_tree,
    optimal_symmetric_cost,
    peeled_tree_bound,
)
from repro.steiner import exact_steiner_cost, validate_tree
from repro.topology import FatTree, LeafSpine, asymmetric, hop_layers


class TestBasics:
    def test_no_destinations(self):
        ls = LeafSpine(2, 2, 2)
        assert layer_peeling_tree(ls, "host:l0:0", []).cost == 0

    def test_source_only_group(self):
        ls = LeafSpine(2, 2, 2)
        assert layer_peeling_tree(ls, "host:l0:0", ["host:l0:0"]).cost == 0

    def test_same_rack(self):
        ls = LeafSpine(2, 2, 2)
        tree = layer_peeling_tree(ls, "host:l0:0", ["host:l0:1"])
        assert tree.cost == 2

    def test_accepts_raw_graph(self):
        ls = LeafSpine(2, 2, 2)
        tree = layer_peeling_tree(ls.graph, "host:l0:0", ["host:l1:0"])
        assert tree.cost == 4

    def test_unreachable_destination_raises(self):
        ls = LeafSpine(1, 2, 1)
        ls.fail_link("leaf:1", "spine:0")
        with pytest.raises(ValueError):
            layer_peeling_tree(ls, "host:l0:0", ["host:l1:0"])

    def test_deterministic(self):
        ls, _ = asymmetric(LeafSpine(4, 8, 2), 0.2, seed=3)
        dests = ls.hosts[5:12]
        a = layer_peeling_tree(ls, ls.hosts[0], dests)
        b = layer_peeling_tree(ls, ls.hosts[0], dests)
        assert a.parent == b.parent


class TestSymmetricOptimality:
    """On failure-free fabrics the greedy should match the optimum — the
    layered structure collapses to Lemma 2.1's construction."""

    def test_leafspine_broadcast(self):
        ls = LeafSpine(2, 2, 4)
        src = "host:l0:0"
        dests = [h for h in ls.hosts if h != src]
        greedy = layer_peeling_tree(ls, src, dests).cost
        assert greedy == optimal_symmetric_cost(ls, src, dests)

    @pytest.mark.parametrize("ndests", [1, 3, 6])
    def test_fattree_small_groups(self, ndests):
        ft = FatTree(4)
        src = ft.hosts[0]
        dests = ft.hosts[2 : 2 + ndests]
        greedy = layer_peeling_tree(ft, src, dests).cost
        assert greedy == exact_steiner_cost(ft.graph, src, dests)


class TestAsymmetric:
    @pytest.mark.parametrize("seed", range(8))
    def test_valid_on_failed_leafspine(self, seed):
        topo, _ = asymmetric(LeafSpine(4, 8, 2), 0.25, seed=seed)
        src = topo.hosts[0]
        dests = topo.hosts[3:11]
        tree = layer_peeling_tree(topo, src, dests)
        validate_tree(tree, topo.graph, src, dests)

    @pytest.mark.parametrize("seed", range(8))
    def test_valid_on_failed_fattree(self, seed):
        topo, _ = asymmetric(FatTree(4), 0.3, seed=seed)
        src = topo.hosts[0]
        dests = topo.hosts[4:12]
        tree = layer_peeling_tree(topo, src, dests)
        validate_tree(tree, topo.graph, src, dests)

    @pytest.mark.parametrize("seed", range(8))
    def test_theorem_bound_vs_exact(self, seed):
        """|T| <= OPT x min(F, |D|)  (Theorem 2.5)."""
        topo, _ = asymmetric(LeafSpine(3, 6, 2), 0.3, seed=seed)
        src = topo.hosts[0]
        dests = topo.hosts[4:8]
        greedy = layer_peeling_tree(topo, src, dests)
        opt = exact_steiner_cost(topo.graph, src, dests)
        layers = hop_layers(topo.graph, src)
        farthest = max(
            j for j, layer in enumerate(layers) if any(d in layer for d in dests)
        )
        assert greedy.cost <= opt * min(farthest, len(dests))

    def test_lemma_2_3_size_bound(self):
        topo, _ = asymmetric(LeafSpine(4, 8, 2), 0.25, seed=5)
        src = topo.hosts[0]
        dests = topo.hosts[3:9]
        tree = layer_peeling_tree(topo, src, dests)
        assert len(tree.nodes) - 1 <= peeled_tree_bound(tree, dests)

    def test_greedy_reasonable_vs_exact(self):
        """Quality check: on small failed fabrics the greedy stays within
        a small constant of the optimum in practice (the paper reports
        within 1.4% of Steiner optimum at fat-tree scale)."""
        worst = 1.0
        for seed in range(10):
            topo, _ = asymmetric(LeafSpine(3, 6, 2), 0.25, seed=seed)
            src = topo.hosts[0]
            dests = topo.hosts[4:9]
            greedy = layer_peeling_tree(topo, src, dests).cost
            opt = exact_steiner_cost(topo.graph, src, dests)
            worst = max(worst, greedy / opt)
        assert worst <= 1.5

    def test_paper_figure2_style_walkthrough(self):
        """A hand-built asymmetric leaf-spine akin to Figure 2: the greedy
        must still reach every receiver via surviving links."""
        ls = LeafSpine(2, 4, 2)
        ls.fail_link("spine:0", "leaf:2")
        ls.fail_link("spine:1", "leaf:1")
        ls.fail_link("spine:1", "leaf:3")
        src = "host:l0:0"
        dests = ["host:l1:0", "host:l2:0", "host:l3:1"]
        tree = layer_peeling_tree(ls, src, dests)
        validate_tree(tree, ls.graph, src, dests)
        # leaf:1 only via spine:0, leaf:2 only via spine:1 -> both spines.
        assert {"spine:0", "spine:1"} <= tree.nodes
