"""MulticastService: group lifecycle without switch updates."""

import pytest

from repro.core import MulticastService
from repro.core.service import GroupClosedError
from repro.steiner import validate_tree
from repro.topology import FatTree, LeafSpine


@pytest.fixture
def service():
    return MulticastService(FatTree(8, hosts_per_tor=4))


class TestLifecycle:
    def test_create_and_plan(self, service):
        group = service.create_group("host:p0:t0:0", ["host:p1:t0:0"])
        assert group.plan.num_prefixes == 1
        assert service.active_groups == 1

    def test_unknown_source_rejected(self, service):
        with pytest.raises(ValueError):
            service.create_group("host:p9:t9:9", [])

    def test_close_releases(self, service):
        group = service.create_group("host:p0:t0:0", ["host:p1:t0:0"])
        group.close()
        assert group.closed
        assert service.active_groups == 0
        with pytest.raises(GroupClosedError):
            _ = group.plan

    def test_close_idempotent(self, service):
        group = service.create_group("host:p0:t0:0", [])
        group.close()
        group.close()

    def test_lookup_by_id(self, service):
        group = service.create_group("host:p0:t0:0", [])
        assert service.group(group.group_id) is group
        group.close()
        with pytest.raises(LookupError):
            service.group(group.group_id)


class TestMembership:
    def test_add_members_replans(self, service):
        group = service.create_group("host:p0:t0:0", ["host:p1:t0:0"])
        before = group.plan
        group.add_members(["host:p2:t0:0", "host:p2:t1:0"])
        after = group.plan
        assert after is not before
        assert "host:p2:t1:0" in {
            n for t in after.static_trees for n in t.nodes
        }

    def test_add_existing_member_keeps_plan(self, service):
        group = service.create_group("host:p0:t0:0", ["host:p1:t0:0"])
        plan = group.plan
        group.add_members(["host:p1:t0:0"])
        assert group.plan is plan

    def test_remove_members_replans(self, service):
        group = service.create_group(
            "host:p0:t0:0", ["host:p1:t0:0", "host:p2:t0:0"]
        )
        group.remove_members(["host:p2:t0:0"])
        served = {n for t in group.plan.static_trees for n in t.nodes}
        assert "host:p2:t0:0" not in served

    def test_source_cannot_leave(self, service):
        group = service.create_group("host:p0:t0:0", ["host:p1:t0:0"])
        with pytest.raises(ValueError):
            group.remove_members(["host:p0:t0:0"])

    def test_plans_stay_valid_through_churn(self, service):
        topo = service.topo
        group = service.create_group("host:p0:t0:0", ["host:p1:t0:0"])
        group.add_members([f"host:p3:t{t}:0" for t in range(4)])
        group.remove_members(["host:p1:t0:0"])
        for tree in group.plan.static_trees:
            validate_tree(tree, topo.graph, "host:p0:t0:0", [])


class TestZeroSwitchUpdates:
    def test_no_updates_across_heavy_churn(self, service):
        """The §3.2 property: any amount of group churn leaves the data
        plane untouched."""
        hosts = service.topo.hosts
        for i in range(50):
            group = service.create_group(hosts[i], hosts[i + 1 : i + 9])
            _ = group.plan
            group.add_members(hosts[i + 9 : i + 12])
            _ = group.plan
            group.close()
        assert service.switch_rule_updates == 0
        assert service.replans == 100
        assert service.static_rules_per_switch == 7  # k-1 at k=8

    def test_leafspine_service_has_no_materialized_table(self):
        service = MulticastService(LeafSpine(4, 8, 2))
        group = service.create_group("host:l0:0", ["host:l3:1"])
        assert group.plan.num_prefixes == 1
        assert service.static_rules_per_switch == 0


class TestFailureReplanning:
    def test_affected_group_replans_around_failure(self):
        service = MulticastService(FatTree(8, hosts_per_tor=4))
        group = service.create_group(
            "host:p0:t0:0", ["host:p3:t0:0", "host:p3:t1:0"]
        )
        plan = group.plan
        core_edge = next(
            (u, v)
            for tree in plan.static_trees
            for u, v in tree.edges
            if u.startswith(("agg", "core")) and v.startswith(("agg", "core"))
        )
        affected = service.handle_link_failure(*core_edge)
        assert group in affected
        new_plan = group.plan
        assert new_plan is not plan
        for tree in new_plan.static_trees:
            validate_tree(tree, service.topo.graph, "host:p0:t0:0", [])
            for edge in tree.edges:
                assert set(edge) != set(core_edge)

    def test_unaffected_groups_untouched(self):
        service = MulticastService(FatTree(8, hosts_per_tor=4))
        local = service.create_group("host:p5:t0:0", ["host:p5:t0:1"])
        local_plan = local.plan
        remote = service.create_group("host:p0:t0:0", ["host:p2:t0:0"])
        core_edge = next(
            (u, v)
            for tree in remote.plan.static_trees
            for u, v in tree.edges
            if u.startswith("core") or v.startswith("core")
        )
        affected = service.handle_link_failure(*core_edge)
        assert local not in affected
        assert local.plan is local_plan

    def test_still_zero_switch_updates(self):
        service = MulticastService(FatTree(8, hosts_per_tor=4))
        group = service.create_group("host:p0:t0:0", ["host:p4:t2:0"])
        _ = group.plan
        edge = next(
            (u, v) for tree in group.plan.static_trees for u, v in tree.edges
            if u.startswith("core") or v.startswith("core")
        )
        service.handle_link_failure(*edge)
        assert service.switch_rule_updates == 0
