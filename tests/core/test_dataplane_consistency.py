"""Cross-validation: plan trees vs the real rule table.

The simulator routes segments by consulting the plan's trees (see
DESIGN.md); these tests close the loop by checking that, at every fan-out
switch, the tree's behaviour is exactly what the pre-installed
:class:`PrefixRuleTable` would do with the packet's encoded header.
"""

import random

import pytest

from repro.core import Peel, PrefixRuleTable
from repro.topology import FatTree
from repro.topology import addressing as addr
from repro.workloads import place_job, place_job_racks


def packet_agg_fanout(packet, agg: str) -> set[int]:
    """ToR indices the packet's tree fans out to at one agg switch."""
    return {
        addr.parse(child).index
        for child in packet.tree.children(agg)
        if addr.kind_of(child) is addr.NodeKind.TOR
    }


class TestTreeMatchesRules:
    @pytest.mark.parametrize("seed", range(8))
    def test_agg_fanout_equals_rule_lookup(self, seed):
        topo = FatTree(8, hosts_per_tor=4)
        table = PrefixRuleTable(topo.k)
        group = place_job_racks(topo, 6, 14, random.Random(seed))
        plan = Peel(topo).plan(group.source.host, group.receiver_hosts)
        src_tor = topo.tor_of(group.source.host)
        for packet in plan.packets:
            rule_ports = set(table.lookup(packet.header.encode()))
            for node in packet.tree.nodes:
                if addr.kind_of(node) is not addr.NodeKind.AGG:
                    continue
                fanout = packet_agg_fanout(packet, node)
                if not fanout:
                    continue
                # The tree may omit the source's own ToR (it sits on the
                # trunk) but must otherwise fan out to exactly the rule's
                # port block.
                missing = rule_ports - fanout
                assert fanout <= rule_ports
                assert missing <= {addr.parse(src_tor).index}

    @pytest.mark.parametrize("seed", range(4))
    def test_bounded_plans_also_consistent(self, seed):
        topo = FatTree(8, hosts_per_tor=4)
        table = PrefixRuleTable(topo.k)
        group = place_job_racks(topo, 5, 16, random.Random(seed))
        plan = Peel(topo, max_prefixes_per_fanout=1).plan(
            group.source.host, group.receiver_hosts
        )
        src_tor_idx = addr.parse(topo.tor_of(group.source.host)).index
        for packet in plan.packets:
            rule_ports = set(table.lookup(packet.header.encode()))
            for node in packet.tree.nodes:
                if addr.kind_of(node) is not addr.NodeKind.AGG:
                    continue
                fanout = packet_agg_fanout(packet, node)
                if fanout:
                    assert fanout <= rule_ports
                    assert rule_ports - fanout <= {src_tor_idx}

    def test_wasted_tors_are_in_rule_block(self):
        """Over-covered ToRs receive traffic because the *rule* says so:
        every wasted ToR must sit inside the packet's block."""
        topo = FatTree(8, hosts_per_tor=4)
        group = place_job_racks(topo, 5, 16, random.Random(2))
        plan = Peel(topo, max_prefixes_per_fanout=1).plan(
            group.source.host, group.receiver_hosts
        )
        for packet in plan.packets:
            block = set(packet.prefix.block(packet.width))
            for tor in packet.wasted_edge_switches:
                assert addr.parse(tor).index in block

    def test_covered_partition_destinations(self):
        """Across packets, covered ToRs never repeat (exact covers)."""
        topo = FatTree(8, hosts_per_tor=4)
        group = place_job_racks(topo, 6, 12, random.Random(3))
        plan = Peel(topo).plan(group.source.host, group.receiver_hosts)
        seen: set[str] = set()
        for packet in plan.packets:
            for tor in packet.covered_edge_switches:
                assert tor not in seen
                seen.add(tor)

    def test_simulated_delivery_matches_plan(self):
        """End to end: run the plan through the simulator and verify the
        bytes on each agg->ToR link match the rule fan-out exactly."""
        from repro.collectives import CollectiveEnv, PeelBroadcast
        from repro.sim import SimConfig

        topo = FatTree(8, hosts_per_tor=4)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=65536))
        group = place_job(topo, 24, gpus_per_host=1, rng=random.Random(4))
        plan = env.peel().plan(group.source.host, group.receiver_hosts)
        msg = 2**20
        handle = PeelBroadcast().launch(env, group, msg, 0.0)
        env.run()
        assert handle.complete
        expected = plan.link_loads("static")
        for (u, v), port in env.network.ports.items():
            if u.startswith("agg") and v.startswith("tor"):
                assert port.bytes_sent == expected.get((u, v), 0) * msg
