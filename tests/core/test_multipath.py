"""Diverse trees and segment striping (§2.3 open question)."""

import pytest

from repro.core import diverse_trees, optimal_symmetric_tree, tree_overlap
from repro.steiner import validate_tree
from repro.topology import FatTree, LeafSpine, asymmetric


class TestDiverseTrees:
    def test_single_tree_matches_optimal(self):
        ft = FatTree(4)
        src = ft.hosts[0]
        dests = ft.hosts[4:8]
        trees = diverse_trees(ft, src, dests, 1)
        assert len(trees) == 1
        assert trees[0].cost == optimal_symmetric_tree(ft, src, dests).cost

    def test_all_trees_same_cost_on_symmetric(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = ft.hosts[0]
        dests = [h for h in ft.hosts if h.startswith("host:p3")][:8]
        trees = diverse_trees(ft, src, dests, 4)
        assert len(trees) == 4
        assert len({t.cost for t in trees}) == 1

    def test_trees_use_distinct_cores(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = ft.hosts[0]
        dests = [h for h in ft.hosts if h.startswith("host:p5")][:4]
        trees = diverse_trees(ft, src, dests, 4)
        cores = [
            next(n for n in t.nodes if n.startswith("core")) for t in trees
        ]
        assert len(set(cores)) == 4

    def test_leafspine_distinct_spines(self):
        ls = LeafSpine(4, 4, 2)
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if not h.startswith("host:l0")]
        trees = diverse_trees(ls, src, dests, 4)
        spines = [
            next(n for n in t.nodes if n.startswith("spine")) for t in trees
        ]
        assert len(set(spines)) == 4

    def test_validity_everywhere(self):
        ls = LeafSpine(4, 6, 2)
        src = ls.hosts[0]
        dests = ls.hosts[3:9]
        for tree in diverse_trees(ls, src, dests, 3):
            validate_tree(tree, ls.graph, src, dests)

    def test_asymmetric_trees_valid_and_diverse(self):
        topo, _ = asymmetric(LeafSpine(4, 8, 2), 0.15, seed=2)
        src = topo.hosts[0]
        dests = topo.hosts[4:10]
        trees = diverse_trees(topo, src, dests, 3)
        assert len(trees) >= 2
        for tree in trees:
            validate_tree(tree, topo.graph, src, dests)

    def test_capped_by_fabric_diversity(self):
        ls = LeafSpine(2, 3, 1)
        src = ls.hosts[0]
        dests = ls.hosts[1:]
        trees = diverse_trees(ls, src, dests, 10)
        assert 1 <= len(trees) <= 2

    def test_empty_group(self):
        ls = LeafSpine(2, 2, 1)
        trees = diverse_trees(ls, ls.hosts[0], [], 3)
        assert len(trees) == 1
        assert trees[0].cost == 0

    def test_rejects_bad_count(self):
        ls = LeafSpine(2, 2, 1)
        with pytest.raises(ValueError):
            diverse_trees(ls, ls.hosts[0], [ls.hosts[1]], 0)


class TestOverlap:
    def test_overlap_below_one_for_diverse_trees(self):
        ft = FatTree(8, hosts_per_tor=4)
        src = ft.hosts[0]
        dests = [h for h in ft.hosts if h.startswith("host:p2")][:8]
        trees = diverse_trees(ft, src, dests, 4)
        # Host links are necessarily shared; trunks must not all be.
        assert tree_overlap(trees) < 1.0

    def test_single_tree_has_zero_shared_fraction(self):
        ft = FatTree(4)
        trees = diverse_trees(ft, ft.hosts[0], ft.hosts[4:6], 1)
        assert tree_overlap(trees) == 0.0

    def test_empty(self):
        from repro.steiner import MulticastTree

        assert tree_overlap([MulticastTree("host:l0:0", {})]) == 0.0


class TestStripedScheme:
    def test_striped_delivers_everything(self):
        from repro.collectives import CollectiveEnv, Gpu, Group, scheme_by_name
        from repro.sim import SimConfig

        ls = LeafSpine(4, 4, 4)
        env = CollectiveEnv(ls, SimConfig(segment_bytes=65536))
        hosts = ls.hosts[:10]
        gpus = tuple(Gpu(h, 0) for h in hosts)
        handle = scheme_by_name("striped").launch(
            env, Group(gpus[0], gpus), 8 * 2**20, 0.0
        )
        env.run()
        assert handle.complete

    def test_striping_spreads_core_load(self):
        from repro.collectives import (
            CollectiveEnv,
            Gpu,
            Group,
            OptimalBroadcast,
            StripedMulticastBroadcast,
        )
        from repro.sim import SimConfig

        def spine_byte_spread(scheme):
            ls = LeafSpine(4, 4, 4)
            env = CollectiveEnv(ls, SimConfig(segment_bytes=65536))
            hosts = [h for h in ls.hosts]
            gpus = tuple(Gpu(h, 0) for h in hosts)
            handle = scheme.launch(env, Group(gpus[0], gpus), 8 * 2**20, 0.0)
            env.run()
            assert handle.complete
            loads = [
                p.bytes_sent
                for (u, v), p in env.network.ports.items()
                if u.startswith("spine") or v.startswith("spine")
            ]
            used = [b for b in loads if b]
            return max(used) if used else 0

        single = spine_byte_spread(OptimalBroadcast())
        striped = spine_byte_spread(StripedMulticastBroadcast(num_trees=4))
        assert striped < single  # hottest spine link carries fewer bytes

    def test_stripe_refinement_conflict_rejected(self):
        from repro.sim import Network, SimConfig, Transfer

        ls = LeafSpine(2, 2, 2)
        net = Network(ls, SimConfig())
        tree = optimal_symmetric_tree(ls, "host:l0:0", ["host:l1:0"])
        with pytest.raises(ValueError):
            Transfer(net, "t", "host:l0:0", 2**20, [tree],
                     refined_tree=tree, refinement_ready_at=0.0, stripe=True)
