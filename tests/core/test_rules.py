"""Pre-installed rule tables: the k-1 entry claim and lookup semantics."""

import pytest

from repro.core import (
    PeelHeader,
    Prefix,
    PrefixRuleTable,
    preinstalled_rules,
    rule_count,
)


class TestRuleCount:
    @pytest.mark.parametrize("k", [4, 8, 16, 32, 64, 128])
    def test_closed_form_matches_enumeration(self, k):
        assert len(preinstalled_rules(k)) == rule_count(k)

    def test_headline_63_rules_at_k64(self):
        """§1: 'In a 64-ary fat-tree ... just 63 rules'."""
        assert rule_count(64) == 63

    def test_127_rules_at_k128(self):
        assert rule_count(128) == 127

    def test_rules_linear_not_exponential(self):
        from repro.state import worst_case_group_entries

        assert rule_count(64) < 64
        assert worst_case_group_entries(64) > 4e9


class TestRuleSemantics:
    def test_blocks_partition_per_length(self):
        rules = preinstalled_rules(8)
        by_length: dict[int, list] = {}
        for rule in rules:
            by_length.setdefault(rule.prefix.length, []).append(rule)
        width = 2  # k=8 -> 4 ToRs -> 2 bits
        for length, group in by_length.items():
            assert len(group) == 1 << length
            covered = sorted(p for rule in group for p in rule.out_ports)
            assert covered == list(range(1 << width))

    def test_root_rule_covers_all_tors(self):
        rules = preinstalled_rules(16)
        root = next(r for r in rules if r.prefix.length == 0)
        assert root.out_ports == tuple(range(8))


class TestRuleTable:
    def test_len_is_k_minus_1(self):
        assert len(PrefixRuleTable(32)) == 31

    def test_match_full_block(self):
        table = PrefixRuleTable(8)
        rule = table.match(PeelHeader(Prefix(0, 0), 2))
        assert rule.out_ports == (0, 1, 2, 3)

    def test_match_half_block(self):
        table = PrefixRuleTable(8)
        rule = table.match(PeelHeader(Prefix(1, 1), 2))
        assert rule.out_ports == (2, 3)

    def test_match_single(self):
        table = PrefixRuleTable(8)
        rule = table.match(PeelHeader(Prefix(3, 2), 2))
        assert rule.out_ports == (3,)

    def test_width_mismatch_rejected(self):
        table = PrefixRuleTable(8)
        with pytest.raises(ValueError):
            table.match(PeelHeader(Prefix(0, 0), 5))

    def test_lookup_via_raw_header(self):
        table = PrefixRuleTable(8)
        raw = PeelHeader(Prefix(1, 1), 2).encode()
        assert table.lookup(raw) == (2, 3)

    def test_every_wire_header_hits_a_rule(self):
        """Deploy-once, touch-never: any well-formed header matches."""
        table = PrefixRuleTable(16)
        width = 3
        for length in range(width + 1):
            for value in range(1 << length):
                raw = PeelHeader(Prefix(value, length), width).encode()
                ports = table.lookup(raw)
                assert ports == tuple(Prefix(value, length).block(width))
