"""Controller model and refinement schedule."""

import random

import pytest

from repro.core import ControllerModel, RefinementSchedule, core_rules_needed


class TestControllerModel:
    def test_non_negative_samples(self):
        ctrl = ControllerModel(rng=random.Random(0))
        assert all(ctrl.setup_delay() >= 0 for _ in range(1000))

    def test_mean_close_to_10ms(self):
        ctrl = ControllerModel(rng=random.Random(1))
        samples = [ctrl.setup_delay() for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert 0.009 < mean < 0.012  # truncation shifts slightly above 10ms

    def test_spread(self):
        ctrl = ControllerModel(rng=random.Random(2))
        samples = [ctrl.setup_delay() for _ in range(5000)]
        assert max(samples) > 0.02
        assert min(samples) < 0.005

    def test_deterministic_with_seed(self):
        a = ControllerModel(rng=random.Random(7))
        b = ControllerModel(rng=random.Random(7))
        assert [a.setup_delay() for _ in range(10)] == [
            b.setup_delay() for _ in range(10)
        ]

    def test_zero_variance(self):
        ctrl = ControllerModel(mean_s=0.005, std_s=0.0, rng=random.Random(0))
        assert ctrl.setup_delay() == pytest.approx(0.005)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            ControllerModel(mean_s=-1)


class TestRefinementSchedule:
    def test_mode_transitions(self):
        sched = RefinementSchedule(ready_at=0.010)
        assert sched.mode_at(0.0) == "static"
        assert sched.mode_at(0.00999) == "static"
        assert sched.mode_at(0.010) == "refined"
        assert sched.mode_at(1.0) == "refined"


class TestCoreRules:
    def test_one_rule_per_destination_pod(self):
        assert core_rules_needed(5) == 5

    def test_never_negative(self):
        assert core_rules_needed(-3) == 0
