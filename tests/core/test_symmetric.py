"""Optimal symmetric trees (Lemma 2.1 and its fat-tree extension)."""

import pytest

from repro.core import SymmetryError, optimal_symmetric_cost, optimal_symmetric_tree
from repro.steiner import exact_steiner_cost, validate_tree
from repro.topology import FatTree, LeafSpine


class TestLeafSpine:
    def test_same_rack(self):
        ls = LeafSpine(2, 2, 4)
        tree = optimal_symmetric_tree(ls, "host:l0:0", ["host:l0:1"])
        assert tree.cost == 2
        assert not any(n.startswith("spine") for n in tree.nodes)

    def test_cross_rack_uses_one_spine(self):
        ls = LeafSpine(4, 4, 2)
        dests = ["host:l1:0", "host:l2:0", "host:l3:1"]
        tree = optimal_symmetric_tree(ls, "host:l0:0", dests)
        spines = [n for n in tree.nodes if n.startswith("spine")]
        assert len(spines) == 1

    def test_full_broadcast_cost(self):
        ls = LeafSpine(2, 2, 4)
        dests = [h for h in ls.hosts if h != "host:l0:0"]
        # 8 host links + src leaf up + spine + remote leaf down = matches
        # Figure 1(c)'s optimal: every host link once, core crossed once.
        tree = optimal_symmetric_tree(ls, "host:l0:0", dests)
        assert tree.cost == 8 + 2

    def test_matches_exact_dp(self):
        ls = LeafSpine(3, 4, 2)
        src = "host:l0:0"
        dests = ["host:l0:1", "host:l2:0", "host:l3:1"]
        assert optimal_symmetric_cost(ls, src, dests) == exact_steiner_cost(
            ls.graph, src, dests
        )

    def test_asymmetric_raises(self):
        ls = LeafSpine(1, 2, 1)
        ls.fail_link("spine:0", "leaf:1")
        with pytest.raises(SymmetryError):
            optimal_symmetric_tree(ls, "host:l0:0", ["host:l1:0"])

    def test_spine_fallback_when_first_spine_degraded(self):
        ls = LeafSpine(2, 2, 1)
        ls.fail_link("spine:0", "leaf:1")
        # spine:1 still reaches everything; the builder must pick it.
        tree = optimal_symmetric_tree(ls, "host:l0:0", ["host:l1:0"])
        assert "spine:1" in tree.nodes


class TestFatTree:
    def test_same_tor(self):
        ft = FatTree(4)
        tree = optimal_symmetric_tree(ft, "host:p0:t0:0", ["host:p0:t0:1"])
        assert tree.cost == 2

    def test_same_pod(self):
        ft = FatTree(4)
        tree = optimal_symmetric_tree(ft, "host:p0:t0:0", ["host:p0:t1:0"])
        # host-tor-agg-tor-host
        assert tree.cost == 4
        assert not any(n.startswith("core") for n in tree.nodes)

    def test_cross_pod_single_core(self):
        ft = FatTree(8)
        dests = ["host:p1:t0:0", "host:p3:t2:1", "host:p5:t1:0"]
        tree = optimal_symmetric_tree(ft, "host:p0:t0:0", dests)
        cores = [n for n in tree.nodes if n.startswith("core")]
        assert len(cores) == 1
        validate_tree(tree, ft.graph, "host:p0:t0:0", dests)

    def test_one_agg_per_destination_pod(self):
        ft = FatTree(8)
        dests = [f"host:p2:t{t}:0" for t in range(4)]
        tree = optimal_symmetric_tree(ft, "host:p0:t0:0", dests)
        aggs_p2 = [n for n in tree.nodes if n.startswith("agg:p2")]
        assert len(aggs_p2) == 1

    def test_matches_exact_dp(self):
        ft = FatTree(4)
        src = ft.hosts[0]
        for dests in (
            [ft.hosts[1]],
            [ft.hosts[3], ft.hosts[6]],
            [ft.hosts[2], ft.hosts[7], ft.hosts[12]],
        ):
            assert optimal_symmetric_cost(ft, src, dests) == exact_steiner_cost(
                ft.graph, src, dests
            )

    def test_full_broadcast_cost_formula(self):
        ft = FatTree(4)
        src = ft.hosts[0]
        dests = [h for h in ft.hosts if h != src]
        tree = optimal_symmetric_tree(ft, src, dests)
        # 16 host links, src ToR up, intra-pod agg hop + sibling ToR,
        # core link, and 3 remote pods x (core->agg + 2 agg->ToR) = 28.
        assert tree.cost == 28
        validate_tree(tree, ft.graph, src, dests)

    def test_asymmetric_raises(self):
        ft = FatTree(4)
        # Fail a core-agg link the construction actually rides (the builder
        # spreads its agg/core choice per source, so read it off the tree).
        tree = optimal_symmetric_tree(ft, "host:p0:t0:0", ["host:p1:t0:0"])
        core_edge = next(
            (u, v) for u, v in tree.edges if u.startswith(("core", "agg"))
            and v.startswith(("core", "agg"))
        )
        ft.fail_link(*core_edge)
        with pytest.raises(SymmetryError):
            optimal_symmetric_tree(ft, "host:p0:t0:0", ["host:p1:t0:0"])

    def test_duplicate_destinations_ignored(self):
        ft = FatTree(4)
        src = "host:p0:t0:0"
        tree = optimal_symmetric_tree(ft, src, ["host:p1:t0:0", "host:p1:t0:0", src])
        assert tree.cost == 6

    def test_unsupported_topology_rejected(self):
        import networkx as nx

        from repro.topology.base import Topology

        with pytest.raises(TypeError):
            optimal_symmetric_tree(Topology(nx.Graph()), "a", ["b"])
