"""Deterministic replay: resumed runs are byte-identical, divergences
are located.

Covers the three golden scenarios from
:mod:`repro.experiments.scenarios` — the headline broadcast batch, the
mid-collective link flap (with a checkpoint *inside* the re-peel
detection window), and the two-tenant serving stream — plus the
observability export, which must also survive a checkpoint unchanged.
"""

import dataclasses

import pytest

from repro.api import ScenarioRun, run
from repro.experiments.scenarios import (
    fault_scenario,
    headline_scenario,
    serve_runtime,
)
from repro.obs import Observability
from repro.replay import (
    Snapshot,
    verify_cut_points,
    verify_scenario_replay,
    verify_serve_replay,
)


class TestGoldenScenarios:
    def test_headline_cut_points(self):
        spec, cuts = headline_scenario()
        reports = verify_cut_points(spec, cuts)
        assert len(reports) == len(cuts)
        for report in reports:
            assert report.identical, report.describe()
            assert report.event_digest
            assert report.trace_digest
            assert 0 < report.events_at_cut < report.events_total
            assert report.snapshot_bytes > 0

    def test_fault_cut_points_including_mid_repeel(self):
        spec, cuts = fault_scenario()
        reports = verify_cut_points(spec, cuts)
        for report in reports:
            assert report.identical, report.describe()
        # The scenario must actually exercise a re-peel, or the mid-window
        # cut proves nothing.
        result = run(spec)
        assert result.repeels, "fault scenario produced no re-peel"
        assert result.invariant_violations == []

    def test_serve_cut_points(self):
        runtime, cuts = serve_runtime()
        del runtime  # verify builds fresh copies via the factory
        for cut in cuts:
            report = verify_serve_replay(
                lambda: serve_runtime()[0], cut
            )
            assert report.identical, report.describe()


class TestDivergenceDetection:
    def test_mismatched_baseline_is_located(self):
        """Feeding a different run as baseline must report a divergence
        with the first differing event pinpointed, not just a digest."""
        spec, cuts = headline_scenario()
        other = dataclasses.replace(spec, scheme="tree")
        ispec = dataclasses.replace(
            other, record_trace=True, keep_trace_events=True,
            event_digest=True,
        )
        base_run = ScenarioRun(ispec)
        base_result = base_run.finish()
        report = verify_scenario_replay(
            spec, cuts[0], baseline=(base_run, base_result)
        )
        assert not report.identical
        assert report.mismatches
        assert report.first_divergence
        assert "DIVERGED" in report.describe()


class TestObservabilityReplay:
    def test_obs_metrics_identical_after_restore(self):
        spec, cuts = headline_scenario()

        straight = dataclasses.replace(
            spec, obs=Observability(), event_digest=True
        )
        base = ScenarioRun(straight).finish()
        base_metrics = straight.obs.metrics_json()

        checkpointed = dataclasses.replace(
            spec, obs=Observability(), event_digest=True
        )
        cut_run = ScenarioRun(checkpointed)
        cut_run.run_until(cuts[1])
        resumed = Snapshot.from_bytes(
            cut_run.snapshot().to_bytes()
        ).restore()
        result = resumed.finish()

        assert result.ccts == base.ccts
        assert result.replay.event_digest == base.replay.event_digest
        # The restored run carries its own pickled Observability copy;
        # its export must be byte-identical to the uninterrupted one.
        assert resumed.spec.obs.metrics_json() == base_metrics


class TestRestartBudget:
    def test_max_events_spans_checkpoints(self):
        """The event budget counts total work, not per-segment work."""
        spec, cuts = headline_scenario()
        capped = dataclasses.replace(spec, max_events=3)
        run_ = ScenarioRun(capped)
        run_.run_until(cuts[0])  # burns more than 3 events already
        resumed = run_.snapshot().restore()
        with pytest.raises(RuntimeError, match="never completed"):
            resumed.finish()
