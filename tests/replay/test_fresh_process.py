"""Snapshots survive the process boundary: a checkpoint written by one
interpreter and resumed in a brand-new one finishes byte-identical to
the uninterrupted run — for all three golden scenarios."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.api import ScenarioRun
from repro.experiments.scenarios import (
    fault_scenario,
    headline_scenario,
    serve_runtime,
)

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

SCENARIO_CHILD = """
import json, sys
from repro.replay import Snapshot

resumed = Snapshot.load(sys.argv[1]).restore()
result = resumed.finish()
json.dump({
    "ccts": result.ccts,
    "event_digest": result.replay.event_digest,
    "trace_digest": result.trace_digest,
    "events_processed": result.replay.events_processed,
    "repeels": [list(r) for r in result.repeels],
    "resumed": result.replay.resumed,
}, sys.stdout)
"""

SERVE_CHILD = """
import json, sys
from repro.replay import Snapshot

resumed = Snapshot.load(sys.argv[1]).restore()
resumed.run()
json.dump({
    "report": repr(resumed.report()),
    "trace_digest": resumed.env.trace.digest(),
    "event_digest": resumed.env.sim.event_digest.hexdigest(),
}, sys.stdout)
"""


def _run_child(code: str, snap_path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    proc = subprocess.run(
        [sys.executable, "-c", code, str(snap_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize(
    "build", [headline_scenario, fault_scenario], ids=["headline", "fault"]
)
def test_scenario_fresh_process_restore(build, tmp_path):
    spec, cuts = build()
    ispec = dataclasses.replace(
        spec, record_trace=True, event_digest=True
    )

    base = ScenarioRun(ispec).finish()

    cut_run = ScenarioRun(ispec)
    cut_run.run_until(cuts[1])
    snap_path = tmp_path / "cut.snap"
    cut_run.snapshot().save(snap_path)

    child = _run_child(SCENARIO_CHILD, snap_path)
    assert child["resumed"] is True
    assert child["ccts"] == base.ccts
    assert child["event_digest"] == base.replay.event_digest
    assert child["trace_digest"] == base.trace_digest
    assert child["events_processed"] == base.replay.events_processed
    # JSON renders the link tuple as a list; normalize before comparing.
    assert child["repeels"] == [
        [r.time_s, r.transfer, list(r.link)] for r in base.repeels
    ]


def test_serve_fresh_process_restore(tmp_path):
    base, cuts = serve_runtime()
    base.env.sim.attach_digest()
    base.run()

    cut, _ = serve_runtime()
    cut.env.sim.attach_digest()
    cut.run(until=cuts[1])
    snap_path = tmp_path / "serve.snap"
    cut.snapshot().save(snap_path)

    child = _run_child(SERVE_CHILD, snap_path)
    assert child["report"] == repr(base.report())
    assert child["trace_digest"] == base.env.trace.digest()
    assert child["event_digest"] == base.env.sim.event_digest.hexdigest()
