"""Checkpoint/replay under protection: snapshot mid-failover, restore in
this process and in a fresh one, and require byte-identical CCTs, golden
trace and chained event digests against the uninterrupted run."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.api import ScenarioRun
from repro.experiments.scenarios import protected_fault_scenario
from repro.replay import verify_cut_points

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

CHILD = """
import json, sys
from repro.replay import Snapshot

resumed = Snapshot.load(sys.argv[1]).restore()
result = resumed.finish()
json.dump({
    "ccts": result.ccts,
    "event_digest": result.replay.event_digest,
    "trace_digest": result.trace_digest,
    "events_processed": result.replay.events_processed,
    "repeels": [list(r) for r in result.repeels],
    "failovers": [[f.time_s, f.transfer, list(f.link)]
                  for f in result.failovers],
    "backup_tcam_entries": result.backup_tcam_entries,
    "resumed": result.replay.resumed,
}, sys.stdout)
"""


def _run_child(snap_path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, str(snap_path)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_protected_scenario_survives_all_cut_points():
    spec, cuts = protected_fault_scenario(1)
    # The middle cut lands after the cut event (failover already taken,
    # detection timer still pending) — the state a checkpoint must carry.
    reports = verify_cut_points(spec, cuts)
    assert [r.identical for r in reports] == [True] * len(cuts)


@pytest.mark.parametrize("resilience", [1, 2])
def test_protected_fresh_process_restore(resilience, tmp_path):
    spec, cuts = protected_fault_scenario(resilience)
    ispec = dataclasses.replace(spec, record_trace=True, event_digest=True)

    base = ScenarioRun(ispec).finish()
    assert base.failovers and not base.repeels  # mid-failover is reachable

    cut_run = ScenarioRun(ispec)
    cut_run.run_until(cuts[1])
    snap_path = tmp_path / "protected.snap"
    cut_run.snapshot().save(snap_path)

    child = _run_child(snap_path)
    assert child["resumed"] is True
    assert child["ccts"] == base.ccts
    assert child["event_digest"] == base.replay.event_digest
    assert child["trace_digest"] == base.trace_digest
    assert child["events_processed"] == base.replay.events_processed
    assert child["repeels"] == []
    # JSON renders the link tuple as a list; normalize before comparing.
    assert child["failovers"] == [
        [f.time_s, f.transfer, list(f.link)] for f in base.failovers
    ]
    assert child["backup_tcam_entries"] == base.backup_tcam_entries
