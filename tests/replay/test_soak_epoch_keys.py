"""Regression pins for the soak harness's epoch keying.

Resumability rests on three load-bearing details that nothing else in the
suite pins directly: epoch specs are pure functions of ``(seed, epoch)``
via the string RNG key ``soak:{seed}:{epoch}``, snapshots are named
``epoch-{epoch:04d}.snap``, and rotation is keyed by epoch index — never
by wall clock or file mtime.  Breaking any of these silently breaks
kill/resume (a resumed process would rebuild a *different* epoch, or
delete the wrong snapshot), so each is asserted here by exact value.
"""

import importlib.util
import os
import random
import time

import repro
from repro.replay import SoakConfig, SoakRunner
from repro.replay.soak import SOAK_SCHEMES

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
)


def _load_shard_soak():
    path = os.path.join(REPO_ROOT, "scripts", "shard_soak.py")
    spec = importlib.util.spec_from_file_location("shard_soak", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestEpochKeying:
    def test_rng_key_is_the_soak_seed_epoch_string(self, tmp_path):
        """The epoch RNG must be ``Random(f"soak:{seed}:{epoch}")`` —
        string seeding hashes stably across processes, unlike ``hash()``.
        A resumed process reconstructs the epoch from this key alone, so
        the scheme drawn by epoch_spec must match an external draw from
        the same key."""
        config = SoakConfig(seed=9, state_dir=tmp_path)
        runner = SoakRunner(config)
        for epoch in (0, 1, 7):
            expected = random.Random(f"soak:9:{epoch}").choice(SOAK_SCHEMES)
            spec, _ = runner.epoch_spec(epoch)
            assert spec.scheme == expected

    def test_spec_is_independent_of_runner_instance_and_state_dir(
        self, tmp_path
    ):
        a = SoakRunner(SoakConfig(seed=5, state_dir=tmp_path / "a"))
        b = SoakRunner(SoakConfig(seed=5, state_dir=tmp_path / "b"))
        spec_a, cut_a = a.epoch_spec(2)
        spec_b, cut_b = b.epoch_spec(2)
        assert cut_a == cut_b
        assert spec_a.jobs == spec_b.jobs
        assert spec_a.config == spec_b.config

    def test_spec_is_independent_of_wall_clock_and_global_rng(
        self, tmp_path, monkeypatch
    ):
        runner = SoakRunner(SoakConfig(seed=5, state_dir=tmp_path))
        spec_a, cut_a = runner.epoch_spec(0)
        monkeypatch.setattr(time, "time", lambda: 4102444800.0)
        random.seed(987654321)
        spec_b, cut_b = runner.epoch_spec(0)
        assert cut_a == cut_b
        assert spec_a.jobs == spec_b.jobs
        assert spec_a.config.seed == spec_b.config.seed


class TestSnapshotNaming:
    def test_snapshot_filename_is_zero_padded_epoch(self, tmp_path):
        """``epoch-{epoch:04d}.snap`` — zero padding keeps lexical and
        numeric order aligned, which rotation and humans both rely on."""
        config = SoakConfig(epochs=1, seed=3, state_dir=tmp_path)
        SoakRunner(config).run()
        assert (tmp_path / "epoch-0000.snap").exists()

    def test_rotation_is_keyed_by_epoch_index_not_mtime(self, tmp_path):
        """Rotation deletes ``epoch-{epoch - keep:04d}.snap`` by index.
        Scrambled mtimes must not change which file dies."""
        runner = SoakRunner(
            SoakConfig(state_dir=tmp_path, keep_snapshots=2)
        )
        for epoch in range(4):
            (tmp_path / f"epoch-{epoch:04d}.snap").write_bytes(b"x")
        # Make the *newest* epoch look oldest on disk.
        past = time.time() - 10_000
        os.utime(tmp_path / "epoch-0003.snap", (past, past))
        runner._rotate_snapshots(3)
        names = sorted(p.name for p in tmp_path.glob("epoch-*.snap"))
        assert names == [
            "epoch-0000.snap", "epoch-0002.snap", "epoch-0003.snap"
        ]

    def test_rotation_of_early_epochs_is_a_noop(self, tmp_path):
        runner = SoakRunner(
            SoakConfig(state_dir=tmp_path, keep_snapshots=2)
        )
        (tmp_path / "epoch-0000.snap").write_bytes(b"x")
        runner._rotate_snapshots(0)
        runner._rotate_snapshots(1)
        assert (tmp_path / "epoch-0000.snap").exists()


class TestShardSoakKeying:
    """The sharded soak script shares the contract: pure (seed, epoch)
    keying and zero-padded, epoch-indexed snapshot names."""

    def test_epoch_spec_is_pure_in_seed_and_epoch(self):
        mod = _load_shard_soak()
        spec_a, cut_a = mod.epoch_spec(seed=3, epoch=1, shards=2)
        spec_b, cut_b = mod.epoch_spec(seed=3, epoch=1, shards=2)
        assert cut_a == cut_b
        assert spec_a.jobs == spec_b.jobs
        assert spec_a.config == spec_b.config
        # Distinct epochs must draw distinct workloads.
        spec_c, _ = mod.epoch_spec(seed=3, epoch=2, shards=2)
        assert spec_c.jobs != spec_a.jobs

    def test_snap_path_is_zero_padded_epoch(self, tmp_path):
        mod = _load_shard_soak()
        state = mod.SoakState(str(tmp_path))
        assert state.snap_path(7).endswith("shard-epoch-0007.snap")
