"""Soak harness: deterministic epochs, resumable manifest, SIGKILL safety."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.replay import SoakConfig, SoakRunner, format_manifest

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
SOAK_SCRIPT = os.path.join(
    os.path.dirname(SRC_DIR), "scripts", "soak.py"
)


class TestEpochGeneration:
    def test_epoch_spec_is_deterministic(self, tmp_path):
        runner = SoakRunner(SoakConfig(state_dir=tmp_path))
        spec_a, cut_a = runner.epoch_spec(4)
        spec_b, cut_b = runner.epoch_spec(4)
        assert cut_a == cut_b
        assert spec_a.scheme == spec_b.scheme
        assert spec_a.jobs == spec_b.jobs
        assert (spec_a.fault_schedule is None) == (
            spec_b.fault_schedule is None
        )

    def test_epochs_differ(self, tmp_path):
        runner = SoakRunner(SoakConfig(state_dir=tmp_path))
        cuts = {runner.epoch_spec(e)[1] for e in range(5)}
        assert len(cuts) == 5

    def test_config_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            SoakConfig(epochs=0)
        with pytest.raises(ValueError, match="fault_probability"):
            SoakConfig(fault_probability=1.5)


class TestCampaign:
    def test_run_and_resume_noop(self, tmp_path):
        lines = []
        config = SoakConfig(epochs=2, seed=3, state_dir=tmp_path)
        manifest = SoakRunner(config, progress=lines.append).run()
        assert len(manifest["epochs"]) == 2
        assert all(r["resumed_identical"] for r in manifest["epochs"])
        assert all(r["violations"] == 0 for r in manifest["epochs"])
        assert (tmp_path / "soak.json").exists()

        # Rerunning a finished campaign verifies nothing new.
        lines.clear()
        again = SoakRunner(config, progress=lines.append).run()
        assert again["epochs"] == manifest["epochs"]
        assert any("resuming" in line for line in lines)

    def test_extends_finished_campaign(self, tmp_path):
        SoakRunner(SoakConfig(epochs=1, seed=3, state_dir=tmp_path)).run()
        manifest = SoakRunner(
            SoakConfig(epochs=3, seed=3, state_dir=tmp_path)
        ).run()
        assert len(manifest["epochs"]) == 3

    def test_seed_mismatch_refused(self, tmp_path):
        SoakRunner(SoakConfig(epochs=1, seed=3, state_dir=tmp_path)).run()
        with pytest.raises(RuntimeError, match="seed"):
            SoakRunner(SoakConfig(epochs=1, seed=4, state_dir=tmp_path)).run()

    def test_snapshot_rotation(self, tmp_path):
        config = SoakConfig(
            epochs=4, seed=3, state_dir=tmp_path, keep_snapshots=2
        )
        SoakRunner(config).run()
        snaps = sorted(p.name for p in tmp_path.glob("epoch-*.snap"))
        assert snaps == ["epoch-0002.snap", "epoch-0003.snap"]

    def test_format_manifest(self, tmp_path):
        manifest = SoakRunner(
            SoakConfig(epochs=1, seed=3, state_dir=tmp_path)
        ).run()
        text = format_manifest(manifest)
        assert "epoch" in text
        assert "1/1" in text


class TestSigkill:
    def _soak(self, state_dir, epochs):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        return subprocess.Popen(
            [
                sys.executable, SOAK_SCRIPT,
                "--epochs", str(epochs),
                "--seed", "3",
                "--state-dir", str(state_dir),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )

    def test_survives_sigkill_between_epochs(self, tmp_path):
        # Epoch 0 completes and lands in the manifest.
        proc = self._soak(tmp_path, 1)
        assert proc.wait(timeout=120) == 0
        first = json.loads((tmp_path / "soak.json").read_text())
        assert len(first["epochs"]) == 1

        # A longer campaign gets SIGKILLed mid-flight — wherever the kill
        # lands, the manifest on disk stays valid at an epoch boundary.
        proc = self._soak(tmp_path, 3)
        time.sleep(0.5)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        killed = json.loads((tmp_path / "soak.json").read_text())
        assert 1 <= len(killed["epochs"]) <= 3

        # Rerunning resumes from the last checkpoint and finishes clean.
        proc = self._soak(tmp_path, 3)
        assert proc.wait(timeout=240) == 0
        final = json.loads((tmp_path / "soak.json").read_text())
        assert len(final["epochs"]) == 3
        assert all(r["resumed_identical"] for r in final["epochs"])
        assert all(r["violations"] == 0 for r in final["epochs"])
        # Pre-kill verified epochs were not re-run or rewritten.
        assert final["epochs"][0] == first["epochs"][0]
