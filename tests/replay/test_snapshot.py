"""Snapshot format: versioning, checksums, atomic save/load, restore."""

import dataclasses
import pickle

import pytest

from repro.api import ScenarioRun
from repro.experiments.scenarios import headline_scenario
from repro.replay import SNAPSHOT_VERSION, Snapshot, SnapshotError


@pytest.fixture
def cut_run():
    spec, cuts = headline_scenario()
    run = ScenarioRun(
        dataclasses.replace(spec, event_digest=True)
    )
    run.run_until(cuts[0])
    return run


class TestFormat:
    def test_capture_metadata(self, cut_run):
        snap = cut_run.snapshot()
        assert snap.version == SNAPSHOT_VERSION
        assert snap.kind == "ScenarioRun"
        assert snap.at_s == cut_run.env.sim.now
        assert snap.events_processed == cut_run.env.sim.processed
        assert snap.payload

    def test_bytes_roundtrip(self, cut_run):
        snap = cut_run.snapshot()
        again = Snapshot.from_bytes(snap.to_bytes())
        assert again == snap

    def test_garbage_blob_rejected(self):
        with pytest.raises(SnapshotError, match="unreadable"):
            Snapshot.from_bytes(b"not a snapshot")

    def test_wrong_header_rejected(self):
        blob = pickle.dumps({"version": 1})
        with pytest.raises(SnapshotError, match="not a snapshot header"):
            Snapshot.from_bytes(blob)

    def test_corrupt_payload_rejected(self, cut_run):
        snap = cut_run.snapshot()
        tampered = dataclasses.replace(
            snap, payload=snap.payload[:-1] + b"\x00"
        )
        with pytest.raises(SnapshotError, match="corrupt"):
            tampered.restore()

    def test_version_skew_rejected(self, cut_run):
        snap = cut_run.snapshot()
        stale = dataclasses.replace(snap, version=SNAPSHOT_VERSION + 1)
        with pytest.raises(SnapshotError, match="version"):
            stale.restore()


class TestDisk:
    def test_save_load(self, cut_run, tmp_path):
        path = tmp_path / "run.snap"
        snap = cut_run.snapshot()
        snap.save(path)
        assert Snapshot.load(path) == snap
        assert not path.with_suffix(".snap.tmp").exists()  # atomic rename

    def test_truncated_file_rejected(self, cut_run, tmp_path):
        path = tmp_path / "run.snap"
        cut_run.snapshot().save(path)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(SnapshotError):
            Snapshot.load(path)


class TestRestore:
    def test_restore_marks_resumed(self, cut_run):
        snap = cut_run.snapshot()
        resumed = snap.restore()
        result = resumed.finish()
        assert result.replay.resumed is True
        assert result.replay.resumed_at_s == snap.at_s

    def test_snapshot_counter(self, cut_run):
        cut_run.snapshot()
        snap = cut_run.snapshot()
        resumed = snap.restore()
        assert resumed.finish().replay.snapshots_taken == 2
