"""Golden-regression suite for the observability layer.

Each ``repro.experiments.obs_demo`` scenario is re-run and its serialized
metrics registry and Chrome-trace timeline compared **byte-for-byte**
against the fixtures committed under ``tests/golden/fixtures/``.  A
mismatch means some behaviour feeding the figures drifted — queueing,
ECN/PFC/DCQCN dynamics, span structure, or serialization itself.  If the
change was intentional, regenerate with ``python scripts/regen_golden.py``
and commit the diff; never hand-edit a fixture.

The parity test additionally pushes all three scenarios through
:func:`repro.experiments.parallel.run_sweep` with ``jobs=1`` and
``jobs=4`` and asserts identical bytes, pinning the guarantee that the
process-pool executor changes *where* a point runs, never *what* it
computes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import SweepPoint, run_sweep
from repro.experiments import obs_demo

FIXTURE_DIR = Path(__file__).parent / "fixtures"

REGEN_HINT = (
    "golden fixture drifted; if intentional, regenerate with "
    "`python scripts/regen_golden.py` and commit the diff"
)


def _fixture(name: str) -> str:
    return (FIXTURE_DIR / name).read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def results() -> dict[str, obs_demo.ObsResult]:
    """Run every scenario once per test module, serially."""
    return {name: obs_demo.run(name) for name in obs_demo.SCENARIOS}


@pytest.mark.parametrize("scenario", obs_demo.SCENARIOS)
def test_metrics_match_fixture(results, scenario):
    assert results[scenario].metrics_json == _fixture(
        f"{scenario}_metrics.json"
    ), REGEN_HINT


@pytest.mark.parametrize("scenario", obs_demo.SCENARIOS)
def test_trace_matches_fixture(results, scenario):
    assert results[scenario].trace_json == _fixture(
        f"{scenario}_trace.json"
    ), REGEN_HINT


def test_summaries_match_fixture(results):
    got = "".join(results[n].summary + "\n" for n in obs_demo.SCENARIOS)
    assert got == _fixture("summaries.txt"), REGEN_HINT


@pytest.mark.parametrize("scenario", obs_demo.SCENARIOS)
def test_trace_fixture_is_valid_chrome_trace(scenario):
    """The committed artifact itself must load in chrome://tracing."""
    trace = json.loads(_fixture(f"{scenario}_trace.json"))
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    cats = {e.get("cat") for e in events}
    assert "collective" in cats
    assert "transfer" in cats
    complete = [e for e in events if e["ph"] == "X"]
    assert complete, "no complete spans in fixture"
    for event in complete:
        assert event["dur"] >= 0
        assert event["ts"] >= 0


@pytest.mark.parametrize("scenario", obs_demo.SCENARIOS)
def test_metrics_fixture_parses(scenario):
    metrics = json.loads(_fixture(f"{scenario}_metrics.json"))
    assert metrics, "empty metrics fixture"
    for name, entry in metrics.items():
        assert entry["kind"] in ("counter", "gauge", "histogram"), name


def test_serial_and_parallel_sweeps_are_byte_identical():
    """jobs=1 and jobs=4 regeneration both reproduce the fixtures."""
    points = [
        SweepPoint(obs_demo.run, kwargs={"scenario": name}, label=name)
        for name in obs_demo.SCENARIOS
    ]
    serial = run_sweep(points, jobs=1)
    pooled = run_sweep(points, jobs=4)
    for name, one, four in zip(obs_demo.SCENARIOS, serial, pooled):
        assert one.metrics_json == four.metrics_json, name
        assert one.trace_json == four.trace_json, name
        assert one.summary == four.summary, name
        assert one.metrics_json == _fixture(f"{name}_metrics.json"), (
            name, REGEN_HINT)
        assert one.trace_json == _fixture(f"{name}_trace.json"), (
            name, REGEN_HINT)
