"""The events/sec regression gate CI's bench-smoke job runs."""

import json
import os
import subprocess
import sys

import pytest

import repro

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
GATE = os.path.join(os.path.dirname(SRC_DIR), "scripts", "bench_gate.py")
BASELINE = os.path.join(os.path.dirname(SRC_DIR), "BENCH_8.json")


def write_bench(path, rate, scenario="headline", obs_ratio=None):
    scenarios = {scenario: {"events_per_sec": rate}}
    if obs_ratio is not None:
        scenarios["obs"] = {"enabled_over_disabled": obs_ratio}
    path.write_text(json.dumps({"scenarios": scenarios}))
    return path


def gate(*argv):
    return subprocess.run(
        [sys.executable, GATE, *map(str, argv)],
        capture_output=True,
        text=True,
        timeout=60,
    )


@pytest.fixture
def baseline(tmp_path):
    return write_bench(tmp_path / "base.json", 400_000.0)


class TestBenchGate:
    def test_passes_within_threshold(self, tmp_path, baseline):
        fresh = write_bench(tmp_path / "fresh.json", 390_000.0)
        proc = gate(fresh, baseline)
        assert proc.returncode == 0, proc.stderr
        assert "bench gate OK" in proc.stdout

    def test_fails_past_ten_percent(self, tmp_path, baseline):
        fresh = write_bench(tmp_path / "fresh.json", 300_000.0)
        proc = gate(fresh, baseline)
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stderr

    def test_boundary_is_inclusive(self, tmp_path, baseline):
        # Exactly -10% is still allowed; a hair under is not.
        assert gate(
            write_bench(tmp_path / "at.json", 360_000.0), baseline
        ).returncode == 0
        assert gate(
            write_bench(tmp_path / "under.json", 359_999.0), baseline
        ).returncode == 1

    def test_custom_threshold_and_scenario(self, tmp_path):
        base = write_bench(tmp_path / "b.json", 100_000.0, scenario="serving")
        fresh = write_bench(tmp_path / "f.json", 80_000.0, scenario="serving")
        assert gate(
            fresh, base, "--scenario", "serving", "--threshold", "0.25"
        ).returncode == 0
        assert gate(
            fresh, base, "--scenario", "serving", "--threshold", "0.10"
        ).returncode == 1

    def test_missing_scenario_fails_loudly(self, tmp_path, baseline):
        fresh = write_bench(tmp_path / "f.json", 1.0, scenario="other")
        proc = gate(fresh, baseline)
        assert proc.returncode != 0
        assert "headline" in proc.stderr

    def test_regression_names_gated_scenario_key(self, tmp_path, baseline):
        fresh = write_bench(tmp_path / "fresh.json", 300_000.0)
        proc = gate(fresh, baseline)
        assert proc.returncode == 1
        assert "REGRESSION[headline.events_per_sec]" in proc.stderr

    def test_committed_baseline_passes_against_itself(self):
        proc = gate(BASELINE, BASELINE)
        assert proc.returncode == 0, proc.stderr
        assert "bench gate OK" in proc.stdout


class TestObsRatioGate:
    def test_skipped_when_obs_scenario_absent(self, tmp_path):
        base = write_bench(tmp_path / "b.json", 400_000.0)
        fresh = write_bench(tmp_path / "f.json", 400_000.0)
        proc = gate(fresh, base)
        assert proc.returncode == 0, proc.stderr
        assert "gate skipped" in proc.stdout

    def test_passes_within_relative_threshold(self, tmp_path):
        base = write_bench(tmp_path / "b.json", 400_000.0, obs_ratio=0.85)
        fresh = write_bench(tmp_path / "f.json", 400_000.0, obs_ratio=0.80)
        proc = gate(fresh, base)  # -5.9% relative, within 10%
        assert proc.returncode == 0, proc.stderr
        assert "bench gate OK" in proc.stdout

    def test_fails_past_relative_threshold(self, tmp_path):
        base = write_bench(tmp_path / "b.json", 400_000.0, obs_ratio=0.85)
        fresh = write_bench(tmp_path / "f.json", 400_000.0, obs_ratio=0.70)
        proc = gate(fresh, base)  # -17.6% relative regression
        assert proc.returncode == 1
        assert "REGRESSION[obs.enabled_over_disabled]" in proc.stderr

    def test_custom_obs_threshold(self, tmp_path):
        base = write_bench(tmp_path / "b.json", 400_000.0, obs_ratio=0.85)
        fresh = write_bench(tmp_path / "f.json", 400_000.0, obs_ratio=0.70)
        proc = gate(fresh, base, "--obs-threshold", "0.25")
        assert proc.returncode == 0, proc.stderr

    def test_obs_regression_does_not_mask_headline_pass(self, tmp_path):
        # Both quantities are checked and reported; one failing is enough.
        base = write_bench(tmp_path / "b.json", 400_000.0, obs_ratio=0.85)
        fresh = write_bench(tmp_path / "f.json", 395_000.0, obs_ratio=0.01)
        proc = gate(fresh, base)
        assert proc.returncode == 1
        assert "headline.events_per_sec" in proc.stdout
        assert "REGRESSION[obs.enabled_over_disabled]" in proc.stderr
