"""DCQCN sender state machine: decrease, recovery, guard timer."""

import pytest

from repro.sim import DcqcnSender, Simulator
from repro.sim.config import DcqcnConfig

LINE = 100e9


def make_sender(**kwargs):
    sim = Simulator()
    cfg = DcqcnConfig(**kwargs)
    return sim, DcqcnSender(sim, cfg, LINE)


class TestDecrease:
    def test_first_cnp_halves_rate(self):
        sim, snd = make_sender()
        snd.on_congestion_notification()
        # alpha starts at 1, refreshed to ~1 -> cut by ~alpha/2.
        assert snd.rate_bps < 0.6 * LINE

    def test_rate_floor(self):
        sim, snd = make_sender(guard_timer_s=0.0)
        for _ in range(100):
            snd.on_congestion_notification()
        assert snd.rate_bps >= snd.cfg.min_rate_bps

    def test_disabled_ignores_cnp(self):
        sim, snd = make_sender(enabled=False)
        snd.on_congestion_notification()
        assert snd.rate_bps == LINE
        assert snd.current_rate_bps == LINE


class TestGuardTimer:
    def test_moderates_cnp_storm(self):
        """The §4 multicast fix: many CNPs inside one window = 1 reaction."""
        sim, snd = make_sender(guard_timer_s=50e-6)
        for _ in range(64):
            snd.on_congestion_notification()
        assert snd.reactions == 1
        assert snd.notifications == 64

    def test_reacts_again_after_window(self):
        sim, snd = make_sender(guard_timer_s=50e-6)
        snd.on_congestion_notification()
        sim.schedule(60e-6, snd.on_congestion_notification)
        sim.run(until=100e-6)
        assert snd.reactions == 2

    def test_per_cnp_mode_reacts_every_time(self):
        sim, snd = make_sender(per_cnp_reaction=True)
        for _ in range(10):
            snd.on_congestion_notification()
        assert snd.reactions == 10

    def test_per_cnp_collapses_rate_faster(self):
        _, guarded = make_sender(guard_timer_s=50e-6)
        _, naive = make_sender(per_cnp_reaction=True)
        for _ in range(32):
            guarded.on_congestion_notification()
            naive.on_congestion_notification()
        assert naive.rate_bps < guarded.rate_bps


class TestRecovery:
    def test_rate_recovers_to_line_rate(self):
        sim, snd = make_sender()
        snd.on_congestion_notification()
        assert snd.rate_bps < LINE
        sim.run(until=1.0)
        assert snd.rate_bps == pytest.approx(LINE)

    def test_fast_recovery_moves_halfway(self):
        sim, snd = make_sender()
        snd.on_congestion_notification()
        cut = snd.rate_bps
        target = snd.target_rate_bps
        sim.run(until=snd.cfg.increase_timer_s * 1.5)
        assert cut < snd.rate_bps <= target + snd.cfg.rate_ai_bps

    def test_alpha_decays_without_cnps(self):
        sim, snd = make_sender()
        snd.on_congestion_notification()
        alpha = snd.alpha
        sim.run(until=snd.cfg.increase_timer_s * 4)
        assert snd.alpha < alpha

    def test_timer_stops_at_line_rate(self):
        sim, snd = make_sender()
        snd.on_congestion_notification()
        sim.run(until=2.0)
        assert sim.pending == 0  # no zombie timers

    def test_stop_cancels_timer(self):
        sim, snd = make_sender()
        snd.on_congestion_notification()
        snd.stop()
        assert sim.pending == 0
        snd.on_congestion_notification()  # no effect after stop
        assert snd.reactions == 1


class TestByteCounter:
    def test_bytes_advance_recovery(self):
        sim, snd = make_sender(byte_counter_bytes=1_000_000)
        snd.on_congestion_notification()
        cut = snd.rate_bps
        snd.on_bytes_sent(2_000_000)  # two byte-counter steps, no timer
        assert snd.rate_bps > cut
        assert snd.stage == 2

    def test_no_effect_at_line_rate(self):
        sim, snd = make_sender(byte_counter_bytes=1_000_000)
        snd.on_bytes_sent(10_000_000)
        assert snd.rate_bps == LINE
        assert snd.stage == 0

    def test_bytes_and_timer_compose(self):
        sim, snd = make_sender(byte_counter_bytes=1_000_000)
        snd.on_congestion_notification()
        snd.on_bytes_sent(1_000_000)
        sim.run(until=snd.cfg.increase_timer_s * 1.5)
        assert snd.stage >= 2

    def test_counter_resets_on_reaction(self):
        sim, snd = make_sender(byte_counter_bytes=1_000_000, guard_timer_s=0.0)
        snd.on_congestion_notification()
        snd.on_bytes_sent(900_000)
        snd.on_congestion_notification()
        snd.on_bytes_sent(900_000)  # must NOT trigger (counter was reset)
        assert snd.stage == 0

    def test_disabled_or_stopped_ignores_bytes(self):
        sim, snd = make_sender(enabled=False)
        snd.on_bytes_sent(10_000_000)
        assert snd.stage == 0
        sim, snd = make_sender(byte_counter_bytes=1_000_000)
        snd.on_congestion_notification()
        snd.stop()
        snd.on_bytes_sent(5_000_000)
        assert snd.stage == 0

    def test_partial_bytes_accumulate_across_calls(self):
        sim, snd = make_sender(byte_counter_bytes=1_000_000)
        snd.on_congestion_notification()
        snd.on_bytes_sent(600_000)
        assert snd.stage == 0
        snd.on_bytes_sent(600_000)  # 1.2 MB total -> exactly one step
        assert snd.stage == 1


class TestIncreaseStages:
    def test_fast_recovery_halves_toward_unchanged_target(self):
        sim, snd = make_sender()
        snd.on_congestion_notification()
        target = snd.target_rate_bps
        for _ in range(snd.cfg.fast_recovery_steps):
            snd._increase_step()
        # Fast recovery converges on the pre-cut rate without raising it.
        assert snd.target_rate_bps == target
        assert snd.rate_bps < target

    def test_additive_then_hyper_increase(self):
        sim, snd = make_sender(min_rate_bps=1e9)
        snd.rate_bps = snd.target_rate_bps = 1e9  # deep cut, far from line
        steps = snd.cfg.fast_recovery_steps
        for _ in range(steps):
            snd._increase_step()
        target = snd.target_rate_bps
        snd._increase_step()  # first additive-increase step
        assert snd.target_rate_bps == target + snd.cfg.rate_ai_bps
        while snd.stage < 2 * steps:
            snd._increase_step()
        target = snd.target_rate_bps
        snd._increase_step()  # first hyper-increase step
        assert snd.target_rate_bps == min(target + snd.cfg.rate_hai_bps, LINE)

    def test_target_and_rate_clamped_at_line_rate(self):
        sim, snd = make_sender()
        snd.rate_bps = snd.target_rate_bps = 0.99 * LINE
        for _ in range(100):
            snd._increase_step()
        assert snd.target_rate_bps == LINE
        assert snd.rate_bps <= LINE

    def test_cnp_mid_recovery_resets_stage_and_retargets(self):
        sim, snd = make_sender(guard_timer_s=0.0)
        snd.on_congestion_notification()
        sim.run(until=snd.cfg.increase_timer_s * 2.5)  # a few timer steps
        assert snd.stage > 0
        recovered = snd.rate_bps
        snd.on_congestion_notification()
        assert snd.stage == 0
        # The new target is the rate the flow had just recovered to.
        assert snd.target_rate_bps == pytest.approx(recovered)

    def test_alpha_grows_toward_one_under_sustained_cnps(self):
        sim, snd = make_sender(guard_timer_s=0.0, alpha_init=0.5)
        alphas = []
        for _ in range(10):
            snd.on_congestion_notification()
            alphas.append(snd.alpha)
        assert alphas == sorted(alphas)
        assert all(a <= 1.0 for a in alphas)

    def test_recovery_from_min_rate_floor(self):
        sim, snd = make_sender(guard_timer_s=0.0)
        for _ in range(200):
            snd.on_congestion_notification()
        assert snd.rate_bps == snd.cfg.min_rate_bps
        sim.run(until=1.0)
        assert snd.rate_bps == pytest.approx(LINE)
        assert sim.pending == 0


class TestGuardTimerBoundary:
    def test_reaction_exactly_at_window_edge(self):
        sim, snd = make_sender(guard_timer_s=50e-6)
        snd.on_congestion_notification()
        sim.schedule(50e-6, snd.on_congestion_notification)
        sim.run(until=60e-6)
        # `now - last < guard` is strict: the edge CNP reacts.
        assert snd.reactions == 2

    def test_reaction_just_inside_window_suppressed(self):
        sim, snd = make_sender(guard_timer_s=50e-6)
        snd.on_congestion_notification()
        sim.schedule(49e-6, snd.on_congestion_notification)
        sim.run(until=60e-6)
        assert snd.reactions == 1
        assert snd.notifications == 2
