"""Fabric telemetry summaries."""

import pytest

from repro.core import optimal_symmetric_tree
from repro.sim import Network, SimConfig, Transfer
from repro.sim.stats import fabric_summary, format_summary
from repro.topology import LeafSpine

MSG = 8 * 2**20


def run_one(loss=0.0):
    ls = LeafSpine(2, 4, 4)
    net = Network(ls, SimConfig(segment_bytes=65536, loss_probability=loss))
    src = ls.hosts[0]
    dests = [h for h in ls.hosts if h != src]
    tree = optimal_symmetric_tree(ls, src, dests)
    t = Transfer(net, "t", src, MSG, [tree])
    t.start()
    net.sim.run(until=5.0)
    assert t.complete
    return net, tree


class TestFabricSummary:
    def test_bytes_partition_across_tiers(self):
        net, tree = run_one()
        summary = fabric_summary(net)
        total = sum(t.total_bytes for t in summary.tiers)
        assert total == net.total_bytes_sent() == MSG * tree.cost

    def test_tier_lookup(self):
        net, _ = run_one()
        summary = fabric_summary(net)
        assert summary.tier("host-edge").total_bytes > 0
        with pytest.raises(KeyError):
            summary.tier("sky")

    def test_utilization_bounded(self):
        net, _ = run_one()
        summary = fabric_summary(net)
        for tier in summary.tiers:
            assert 0 <= tier.mean_utilization <= tier.max_utilization <= 1.01

    def test_hottest_links_sorted(self):
        net, _ = run_one()
        hottest = fabric_summary(net, top_links=3).hottest_links
        sizes = [l.bytes_sent for l in hottest]
        assert sizes == sorted(sizes, reverse=True)
        assert len(hottest) == 3

    def test_loss_counter_surfaces(self):
        net, _ = run_one(loss=0.05)
        assert fabric_summary(net).lost_segments > 0

    def test_requires_elapsed_time(self):
        ls = LeafSpine(2, 2, 2)
        net = Network(ls, SimConfig())
        with pytest.raises(ValueError):
            fabric_summary(net)

    def test_format_renders(self):
        net, _ = run_one()
        text = format_summary(fabric_summary(net))
        assert "hottest links" in text
        assert "host-edge" in text
