"""SimConfig / DcqcnConfig validation and derived values."""

import pytest

from repro.sim import DcqcnConfig, SimConfig


class TestSimConfig:
    def test_defaults_match_paper(self):
        cfg = SimConfig()
        assert cfg.switch_buffer_bytes == 12_000_000
        assert cfg.ecn_kmin_bytes == 5_000
        assert cfg.ecn_kmax_bytes == 200_000
        assert cfg.ecn_pmax == 0.01
        assert cfg.pfc_pause_free_fraction == 0.11
        assert cfg.pfc_resume_hysteresis_mtus == 5
        assert cfg.nvlink_bytes_per_s == 900e9

    def test_pfc_thresholds(self):
        cfg = SimConfig()
        assert cfg.pfc_pause_threshold_bytes == pytest.approx(12e6 * 0.89)
        assert (
            cfg.pfc_pause_threshold_bytes - cfg.pfc_resume_threshold_bytes
            == 5 * cfg.mtu_bytes
        )

    def test_segments_for_exact_division(self):
        cfg = SimConfig(segment_bytes=1000 * 1500)
        sizes = cfg.segments_for(3000 * 1500)
        assert sizes == [1500000, 1500000, 1500000]

    def test_segments_for_remainder(self):
        cfg = SimConfig(segment_bytes=65536)
        sizes = cfg.segments_for(65536 + 100)
        assert sizes == [65536, 100]
        assert sum(sizes) == 65536 + 100

    def test_segments_for_tiny_message(self):
        cfg = SimConfig()
        assert cfg.segments_for(10) == [10]

    def test_segments_for_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SimConfig().segments_for(0)

    def test_rejects_segment_below_mtu(self):
        with pytest.raises(ValueError):
            SimConfig(segment_bytes=100)

    def test_rejects_bad_pfc_fraction(self):
        with pytest.raises(ValueError):
            SimConfig(pfc_pause_free_fraction=0.0)
        with pytest.raises(ValueError):
            SimConfig(pfc_pause_free_fraction=1.0)

    def test_rejects_inverted_ecn_thresholds(self):
        with pytest.raises(ValueError):
            SimConfig(ecn_kmin_bytes=300_000, ecn_kmax_bytes=200_000)


class TestDcqcnConfig:
    def test_defaults(self):
        cfg = DcqcnConfig()
        assert cfg.enabled
        assert cfg.guard_timer_s == 50e-6
        assert not cfg.per_cnp_reaction
        assert cfg.alpha_g == 1 / 256

    def test_ablation_flag_independent(self):
        cfg = DcqcnConfig(per_cnp_reaction=True)
        assert cfg.guard_timer_s == 50e-6  # ignored, but unchanged
