"""Runtime network: serialization, byte conservation, ECN, PFC."""

import pytest

from repro.core import optimal_symmetric_tree
from repro.sim import Network, SimConfig, Transfer
from repro.steiner import MulticastTree
from repro.topology import LeafSpine


def make_net(**cfg_kwargs):
    defaults = dict(segment_bytes=65536)
    defaults.update(cfg_kwargs)
    ls = LeafSpine(2, 2, 4)
    return ls, Network(ls, SimConfig(**defaults))


class TestSerialization:
    def test_single_hop_timing(self):
        ls, net = make_net()
        tree = MulticastTree("host:l0:0", {"leaf:0": "host:l0:0", "host:l0:1": "leaf:0"})
        done = {}
        t = Transfer(net, "t", "host:l0:0", 2**20, [tree],
                     on_host_done=lambda h, at: done.setdefault(h, at))
        t.start()
        net.sim.run()
        # 1 MiB over 2 hops at 100 Gb/s: serialization + 1 segment pipeline.
        ideal = 2**20 * 8 / 100e9
        assert done["host:l0:1"] == pytest.approx(ideal, rel=0.2)

    def test_bytes_conserved(self):
        ls, net = make_net()
        src = "host:l0:0"
        dests = [h for h in ls.hosts if h != src]
        tree = optimal_symmetric_tree(ls, src, dests)
        t = Transfer(net, "t", src, 4 * 2**20, [tree])
        t.start()
        net.sim.run()
        assert net.total_bytes_sent() == 4 * 2**20 * tree.cost

    def test_link_bytes_match_tree_edges(self):
        ls, net = make_net()
        src = "host:l0:0"
        tree = optimal_symmetric_tree(ls, src, ["host:l1:0"])
        t = Transfer(net, "t", src, 2**20, [tree])
        t.start()
        net.sim.run()
        loads = {k: v for k, v in net.link_bytes().items() if v}
        assert set(loads) == set(tree.edges)
        assert all(v == 2**20 for v in loads.values())


class TestReplication:
    def test_switch_fans_out(self):
        ls, net = make_net()
        src = "host:l0:0"
        dests = ["host:l0:1", "host:l0:2", "host:l0:3"]
        tree = optimal_symmetric_tree(ls, src, dests)
        done = {}
        t = Transfer(net, "t", src, 2**20, [tree],
                     on_host_done=lambda h, at: done.setdefault(h, at))
        t.start()
        net.sim.run()
        assert set(done) == set(dests)
        # Fan-out is parallel across ports: arrival times nearly equal.
        times = sorted(done.values())
        assert times[-1] - times[0] < 1e-4

    def test_wasted_tor_discards(self):
        ls, net = make_net()
        src = "host:l0:0"
        # Route includes leaf:1 as a leaf node with no children: the
        # over-covered-ToR case; it must count as wasted bytes.
        tree = MulticastTree(src, {
            "leaf:0": src, "host:l0:1": "leaf:0",
            "spine:0": "leaf:0", "leaf:1": "spine:0",
        })
        t = Transfer(net, "t", src, 2**20, [tree])
        t.start()
        net.sim.run()
        assert t.complete
        assert net.wasted_bytes == 2**20


class TestEcn:
    def test_no_marks_without_contention(self):
        ls, net = make_net()
        tree = optimal_symmetric_tree(ls, "host:l0:0", ["host:l1:0"])
        t = Transfer(net, "t", "host:l0:0", 8 * 2**20, [tree])
        t.start()
        net.sim.run()
        assert sum(p.ecn_marks for p in net.ports.values()) == 0

    def test_contention_produces_marks_and_cnp(self):
        ls, net = make_net(ecn_kmax_bytes=200_000)
        # Two hosts blast the same destination -> shared leaf downlink.
        dst = "host:l1:0"
        transfers = []
        for src in ("host:l0:0", "host:l0:1"):
            tree = optimal_symmetric_tree(ls, src, [dst])
            t = Transfer(net, f"t-{src}", src, 16 * 2**20, [tree])
            t.start()
            transfers.append(t)
        net.sim.run()
        assert sum(p.ecn_marks for p in net.ports.values()) > 0
        assert any(t.dcqcn.notifications > 0 for t in transfers)

    def test_rate_reduced_under_congestion(self):
        ls, net = make_net()
        dst = "host:l1:0"
        transfers = []
        for src in ("host:l0:0", "host:l0:1", "host:l0:2"):
            tree = optimal_symmetric_tree(ls, src, [dst])
            t = Transfer(net, f"t-{src}", src, 32 * 2**20, [tree])
            t.start()
            transfers.append(t)
        net.sim.run()
        assert any(t.dcqcn.reactions > 0 for t in transfers)


class TestPfc:
    def test_pause_engages_under_small_buffer(self):
        ls = LeafSpine(2, 2, 4)
        cfg = SimConfig(segment_bytes=65536, switch_buffer_bytes=600_000)
        net = Network(ls, cfg)
        dst = "host:l1:0"
        for src in ("host:l0:0", "host:l0:1", "host:l0:2", "host:l0:3"):
            tree = optimal_symmetric_tree(ls, src, [dst])
            Transfer(net, f"t-{src}", src, 8 * 2**20, [tree]).start()
        net.sim.run()
        assert net.pfc_pause_events > 0

    def test_lossless_under_pressure(self):
        """PFC keeps the fabric lossless: every byte still arrives."""
        ls = LeafSpine(2, 2, 4)
        cfg = SimConfig(segment_bytes=65536, switch_buffer_bytes=600_000)
        net = Network(ls, cfg)
        done = []
        dst = "host:l1:0"
        msg = 8 * 2**20
        transfers = []
        for src in ("host:l0:0", "host:l0:1", "host:l0:2", "host:l0:3"):
            tree = optimal_symmetric_tree(ls, src, [dst])
            t = Transfer(net, f"t-{src}", src, msg, [tree],
                         on_host_done=lambda h, at: done.append(at))
            t.start()
            transfers.append(t)
        net.sim.run()
        assert all(t.complete for t in transfers)
        assert len(done) == 4

    def test_pause_resume_cycle_drains(self):
        ls = LeafSpine(2, 2, 4)
        cfg = SimConfig(segment_bytes=65536, switch_buffer_bytes=600_000)
        net = Network(ls, cfg)
        tree = optimal_symmetric_tree(ls, "host:l0:0", ["host:l1:0"])
        t = Transfer(net, "t", "host:l0:0", 16 * 2**20, [tree])
        t.start()
        net.sim.run()
        for node in net.nodes.values():
            if hasattr(node, "buffered_bytes"):
                assert node.buffered_bytes == 0
                assert not node.paused_ingress


class TestHostEndpoints:
    def test_host_lookup(self):
        ls, net = make_net()
        assert net.host("host:l0:0").name == "host:l0:0"
        with pytest.raises(TypeError):
            net.host("leaf:0")

    def test_send_requires_single_first_hop(self):
        ls, net = make_net()
        from repro.sim.packet import Segment

        bad_tree = MulticastTree("host:l0:0", {})
        t = Transfer(net, "t", "host:l0:0", 1500,
                     [MulticastTree("host:l0:0", {"leaf:0": "host:l0:0"})])
        seg = Segment(t, 0, 1500, bad_tree)
        with pytest.raises(ValueError):
            net.host("host:l0:0").send(seg)
