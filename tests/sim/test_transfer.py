"""Transfer semantics: pacing, relays, multi-tree, mode switching."""

import pytest

from repro.core import Peel, optimal_symmetric_tree
from repro.sim import Network, SimConfig, Transfer
from repro.steiner import MulticastTree
from repro.topology import LeafSpine


def net_fixture(**kwargs):
    defaults = dict(segment_bytes=65536)
    defaults.update(kwargs)
    ls = LeafSpine(2, 4, 4)
    return ls, Network(ls, SimConfig(**defaults))


class TestValidation:
    def test_requires_tree(self):
        ls, net = net_fixture()
        with pytest.raises(ValueError):
            Transfer(net, "t", "host:l0:0", 1500, [])

    def test_tree_root_must_match(self):
        ls, net = net_fixture()
        tree = MulticastTree("host:l1:0", {"leaf:1": "host:l1:0"})
        with pytest.raises(ValueError):
            Transfer(net, "t", "host:l0:0", 1500, [tree])

    def test_refined_needs_ready_time(self):
        ls, net = net_fixture()
        tree = optimal_symmetric_tree(ls, "host:l0:0", ["host:l1:0"])
        with pytest.raises(ValueError):
            Transfer(net, "t", "host:l0:0", 1500, [tree], refined_tree=tree)

    def test_segmentation_override(self):
        ls, net = net_fixture()
        tree = optimal_symmetric_tree(ls, "host:l0:0", ["host:l1:0"])
        t = Transfer(net, "t", "host:l0:0", 10_000, [tree], segment_bytes=3_000)
        assert t.segment_sizes == [3000, 3000, 3000, 1000]

    def test_no_receivers_completes_instantly(self):
        ls, net = net_fixture()
        tree = MulticastTree("host:l0:0", {})
        t = Transfer(net, "t", "host:l0:0", 1500, [tree], receivers=set())
        t.start()
        assert t.complete


class TestPacing:
    def test_start_delay_respected(self):
        ls, net = net_fixture()
        tree = optimal_symmetric_tree(ls, "host:l0:0", ["host:l0:1"])
        done = {}
        t = Transfer(net, "t", "host:l0:0", 2**20, [tree], start_at=0.005,
                     on_host_done=lambda h, at: done.setdefault(h, at))
        t.start()
        net.sim.run()
        assert done["host:l0:1"] > 0.005

    def test_completion_time_tracks_message_size(self):
        ls, net = net_fixture()
        times = []
        for i, msg in enumerate((2**20, 4 * 2**20)):
            ls2, net2 = net_fixture()
            tree = optimal_symmetric_tree(ls2, "host:l0:0", ["host:l1:0"])
            t = Transfer(net2, f"t{i}", "host:l0:0", msg, [tree])
            t.start()
            net2.sim.run()
            times.append(t.complete_at)
        assert times[1] > 3 * times[0]


class TestRelays:
    def test_relay_waits_for_upstream(self):
        ls, net = net_fixture()
        a, b, c = "host:l0:0", "host:l1:0", "host:l2:0"
        t1 = Transfer(net, "t1", a, 2**20,
                      [optimal_symmetric_tree(ls, a, [b])])
        done = {}
        t2 = Transfer(net, "t2", b, 2**20,
                      [optimal_symmetric_tree(ls, b, [c])], is_relay=True,
                      on_host_done=lambda h, at: done.setdefault(h, at))
        t1.add_relay_child(b, t2)
        t2.start()
        net.sim.run()
        assert not t2.complete  # nothing available yet
        t1.start()
        net.sim.run()
        assert t2.complete
        assert done[c] > t1.complete_at * 0.9

    def test_relay_pipelines_segments(self):
        """With fine segments, the relay finishes well before 2x the
        single-hop time (chunked pipelining)."""
        ls, net = net_fixture()
        a, b, c = "host:l0:0", "host:l1:0", "host:l2:0"
        msg = 8 * 2**20
        t1 = Transfer(net, "t1", a, msg, [optimal_symmetric_tree(ls, a, [b])])
        t2 = Transfer(net, "t2", b, msg, [optimal_symmetric_tree(ls, b, [c])],
                      is_relay=True)
        t1.add_relay_child(b, t2)
        t1.start()
        t2.start()
        net.sim.run()
        serial = msg * 8 / 100e9
        assert t2.complete_at < 1.5 * serial

    def test_chunked_relay_coarser_than_segment(self):
        """relay_chunk_bytes gates forwarding at chunk boundaries."""
        ls, net = net_fixture()
        a, b, c = "host:l0:0", "host:l1:0", "host:l2:0"
        msg = 8 * 2**20
        t1 = Transfer(net, "t1", a, msg, [optimal_symmetric_tree(ls, a, [b])],
                      relay_chunk_bytes=msg // 2)
        t2 = Transfer(net, "t2", b, msg, [optimal_symmetric_tree(ls, b, [c])],
                      is_relay=True)
        t1.add_relay_child(b, t2)
        t1.start()
        t2.start()
        net.sim.run()
        serial = msg * 8 / 100e9
        # Two-chunk pipeline: ~1.5x one serialization, definitely > 1.4x.
        assert t2.complete_at > 1.4 * serial

    def test_relay_child_must_be_receiver(self):
        ls, net = net_fixture()
        a, b = "host:l0:0", "host:l1:0"
        t1 = Transfer(net, "t1", a, 2**20, [optimal_symmetric_tree(ls, a, [b])])
        with pytest.raises(ValueError):
            t1.add_relay_child("host:l3:0", t1)


class TestMultiTree:
    def test_static_multitree_delivers_all(self):
        ls, net = net_fixture()
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h != src]
        plan = Peel(ls).plan(src, dests)
        assert plan.num_prefixes >= 2
        done = set()
        t = Transfer(net, "t", src, 2**20, plan.static_trees,
                     receivers=set(dests),
                     on_host_done=lambda h, at: done.add(h))
        t.start()
        net.sim.run()
        assert done == set(dests)

    def test_multitree_costs_more_nic_time(self):
        ls, _ = net_fixture()
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h != src]
        plan = Peel(ls).plan(src, dests)

        def run(trees, receivers):
            _, net = net_fixture()
            t = Transfer(net, "t", src, 4 * 2**20, trees, receivers=receivers)
            t.start()
            net.sim.run()
            return t.complete_at

        static = run(plan.static_trees, set(dests))
        refined = run([plan.refined_tree], set(dests))
        assert static > refined

    def test_mode_switch_speeds_up_completion(self):
        ls, _ = net_fixture()
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h != src]
        plan = Peel(ls).plan(src, dests)
        msg = 16 * 2**20

        def run(ready_at):
            _, net = net_fixture()
            t = Transfer(net, "t", src, msg, plan.static_trees,
                         refined_tree=plan.refined_tree,
                         refinement_ready_at=ready_at,
                         receivers=set(dests))
            t.start()
            net.sim.run()
            assert t.complete
            return t.complete_at

        never = run(ready_at=10.0)
        early = run(ready_at=0.0005)
        assert early < never
