"""Discrete-event engine semantics."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(0.3, log.append, "c")
        sim.schedule(0.1, log.append, "a")
        sim.schedule(0.2, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        log = []
        sim.schedule(0.1, log.append, 1)
        sim.schedule(0.1, log.append, 2)
        sim.run()
        assert log == [1, 2]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5]
        assert sim.now == 0.5

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(0.1, lambda: log.append(sim.now))

        sim.schedule(0.1, first)
        sim.run()
        assert log == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(0.1, log.append, "x")
        handle.cancel()
        assert sim.run() == 0
        assert log == []

    def test_handle_active_flag(self):
        sim = Simulator()
        handle = sim.schedule(0.1, lambda: None)
        assert handle.active
        handle.cancel()
        assert not handle.active

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None).cancel()
        assert sim.pending == 1


class TestCancelEdgeCases:
    def test_cancel_then_fire_same_timestamp(self):
        # Cancelling a same-time later event from inside an earlier one
        # must suppress it even though both are already due.
        sim = Simulator()
        log = []
        handles = {}

        def first():
            log.append("first")
            handles["second"].cancel()

        sim.schedule(0.1, first)
        handles["second"] = sim.schedule(0.1, log.append, "second")
        sim.schedule(0.1, log.append, "third")
        assert sim.run() == 2
        assert log == ["first", "third"]

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        sim.schedule(0.2, lambda: None)
        handle = sim.schedule(0.1, lambda: None)
        handle.cancel()
        handle.cancel()  # second cancel must not double-count
        assert sim.pending == 1
        assert sim.run() == 1

    def test_handle_inactive_after_firing(self):
        sim = Simulator()
        handle = sim.schedule(0.1, lambda: None)
        sim.run()
        assert not handle.active
        handle.cancel()  # no-op, must not corrupt counters
        assert sim.pending == 0

    def test_compaction_preserves_order(self):
        # Cancel well over half the scheduled events so the heap compacts,
        # then check the survivors still fire in time order.
        sim = Simulator()
        log = []
        handles = [
            sim.schedule(0.001 * (i + 1), log.append, i) for i in range(200)
        ]
        for i, handle in enumerate(handles):
            if i % 4:  # cancel 150 of 200
                handle.cancel()
        assert sim.pending == 50
        assert sim.run() == 50
        assert log == list(range(0, 200, 4))

    def test_compaction_mid_run(self):
        # A callback that cancels a burst of future events triggers
        # compaction while run() is iterating; remaining events still fire.
        sim = Simulator()
        log = []
        doomed = []

        def purge():
            log.append("purge")
            for handle in doomed:
                handle.cancel()

        sim.schedule(0.1, purge)
        doomed.extend(
            sim.schedule(0.2 + 0.001 * i, log.append, i) for i in range(150)
        )
        sim.schedule(1.0, log.append, "last")
        assert sim.run() == 2
        assert log == ["purge", "last"]

    def test_pending_is_live_count(self):
        sim = Simulator()
        assert sim.pending == 0
        handles = [sim.schedule(0.1 * (i + 1), lambda: None) for i in range(5)]
        assert sim.pending == 5
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending == 3
        sim.run(max_events=1)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0


class TestPost:
    def test_post_fires_without_handle(self):
        sim = Simulator()
        log = []
        assert sim.post(0.1, log.append, "x") is None
        sim.run()
        assert log == ["x"]

    def test_post_at_orders_with_schedule(self):
        sim = Simulator()
        log = []
        sim.schedule(0.2, log.append, "b")
        sim.post_at(0.1, log.append, "a")
        sim.post_at(0.3, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_post_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().post(-0.1, lambda: None)

    def test_post_at_rejects_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.post_at(0.5, lambda: None)


class TestRunLimits:
    def test_until_stops_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(0.1, log.append, "a")
        sim.schedule(0.9, log.append, "b")
        sim.run(until=0.5)
        assert log == ["a"]
        assert sim.now == 0.5
        sim.run()
        assert log == ["a", "b"]

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(0.01 * (i + 1), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending == 7

    def test_until_exactly_on_event_time(self):
        # An event at exactly t == until fires; the clock lands on until.
        sim = Simulator()
        log = []
        sim.schedule(0.5, log.append, "edge")
        sim.schedule(0.5 + 1e-9, log.append, "after")
        assert sim.run(until=0.5) == 1
        assert log == ["edge"]
        assert sim.now == 0.5
        sim.run()
        assert log == ["edge", "after"]

    def test_until_advances_clock_past_cancelled_tail(self):
        sim = Simulator()
        sim.schedule(0.3, lambda: None).cancel()
        sim.run(until=0.2)
        assert sim.now == 0.2

    def test_max_events_skips_cancelled(self):
        # Cancelled entries popped during run() do not count as processed.
        sim = Simulator()
        log = []
        for i in range(6):
            handle = sim.schedule(0.01 * (i + 1), log.append, i)
            if i % 2 == 0:
                handle.cancel()
        assert sim.run(max_events=2) == 2
        assert log == [1, 3]
        assert sim.pending == 1

    def test_processed_counter(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.processed == 1
