"""Discrete-event engine semantics."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(0.3, log.append, "c")
        sim.schedule(0.1, log.append, "a")
        sim.schedule(0.2, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        log = []
        sim.schedule(0.1, log.append, 1)
        sim.schedule(0.1, log.append, 2)
        sim.run()
        assert log == [1, 2]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.5]
        assert sim.now == 0.5

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(0.1, lambda: log.append(sim.now))

        sim.schedule(0.1, first)
        sim.run()
        assert log == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(0.1, log.append, "x")
        handle.cancel()
        assert sim.run() == 0
        assert log == []

    def test_handle_active_flag(self):
        sim = Simulator()
        handle = sim.schedule(0.1, lambda: None)
        assert handle.active
        handle.cancel()
        assert not handle.active

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.schedule(0.2, lambda: None).cancel()
        assert sim.pending == 1


class TestRunLimits:
    def test_until_stops_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(0.1, log.append, "a")
        sim.schedule(0.9, log.append, "b")
        sim.run(until=0.5)
        assert log == ["a"]
        assert sim.now == 0.5
        sim.run()
        assert log == ["a", "b"]

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(0.01 * (i + 1), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending == 7

    def test_processed_counter(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.processed == 1
