"""Lossy fabrics and selective-repeat recovery (RDMA-style reliability)."""

import pytest

from repro.core import Peel, optimal_symmetric_tree
from repro.sim import Network, SimConfig, Transfer
from repro.topology import LeafSpine

MSG = 4 * 2**20


def lossy_net(loss, **kwargs):
    ls = LeafSpine(2, 4, 4)
    cfg = SimConfig(segment_bytes=65536, loss_probability=loss, **kwargs)
    return ls, Network(ls, cfg)


def run_broadcast(ls, net, msg=MSG):
    src = ls.hosts[0]
    dests = [h for h in ls.hosts if h != src]
    tree = optimal_symmetric_tree(ls, src, dests)
    t = Transfer(net, "t", src, msg, [tree])
    t.start()
    net.sim.run(until=5.0)
    return t


class TestLossInjection:
    def test_zero_loss_by_default(self):
        ls, net = lossy_net(0.0)
        t = run_broadcast(ls, net)
        assert t.complete
        assert net.lost_segments == 0
        assert t.retransmissions == 0

    @pytest.mark.parametrize("loss", [0.01, 0.05, 0.15])
    def test_completes_despite_loss(self, loss):
        ls, net = lossy_net(loss)
        t = run_broadcast(ls, net)
        assert t.complete
        assert net.lost_segments > 0
        assert t.retransmissions > 0

    def test_loss_increases_cct(self):
        ls0, net0 = lossy_net(0.0)
        clean = run_broadcast(ls0, net0).complete_at
        ls1, net1 = lossy_net(0.10)
        lossy = run_broadcast(ls1, net1).complete_at
        assert lossy > clean

    def test_no_duplicate_counting(self):
        """Receivers dedupe repair copies racing the originals."""
        ls, net = lossy_net(0.10)
        t = run_broadcast(ls, net)
        for host, count in t._delivered_count.items():
            assert count == t.num_segments

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            SimConfig(loss_probability=1.0)
        with pytest.raises(ValueError):
            SimConfig(loss_probability=-0.1)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            SimConfig(retransmit_timeout_s=0)


class TestRepairPath:
    def test_repairs_are_unicast(self):
        """Repair traffic must not re-multicast: after a loss-free start,
        only the laggard's downlink sees extra bytes."""
        ls, net = lossy_net(0.08)
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h != src]
        tree = optimal_symmetric_tree(ls, src, dests)
        t = Transfer(net, "t", src, MSG, [tree])
        t.start()
        net.sim.run(until=5.0)
        assert t.complete
        # Every receiver got exactly num_segments distinct segments.
        assert all(len(s) == t.num_segments for s in t._received.values())

    def test_peel_multitree_with_loss(self):
        ls = LeafSpine(4, 8, 2)
        cfg = SimConfig(segment_bytes=65536, loss_probability=0.05)
        net = Network(ls, cfg)
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h != src]
        plan = Peel(ls).plan(src, dests)
        t = Transfer(net, "t", src, MSG, plan.static_trees, receivers=set(dests))
        t.start()
        net.sim.run(until=5.0)
        assert t.complete

    def test_relay_chain_with_loss(self):
        """Ring-style relays recover too: each hop repairs independently."""
        ls, net = lossy_net(0.05)
        a, b, c = "host:l0:0", "host:l1:0", "host:l2:0"
        t1 = Transfer(net, "t1", a, MSG, [optimal_symmetric_tree(ls, a, [b])])
        t2 = Transfer(net, "t2", b, MSG, [optimal_symmetric_tree(ls, b, [c])],
                      is_relay=True)
        t1.add_relay_child(b, t2)
        t1.start()
        t2.start()
        net.sim.run(until=5.0)
        assert t1.complete and t2.complete
