"""Lossy fabrics and selective-repeat recovery (RDMA-style reliability)."""

import pytest

from repro.core import Peel, optimal_symmetric_tree
from repro.sim import Network, SimConfig, Transfer
from repro.topology import LeafSpine

MSG = 4 * 2**20


def lossy_net(loss, **kwargs):
    ls = LeafSpine(2, 4, 4)
    cfg = SimConfig(segment_bytes=65536, loss_probability=loss, **kwargs)
    return ls, Network(ls, cfg)


def run_broadcast(ls, net, msg=MSG):
    src = ls.hosts[0]
    dests = [h for h in ls.hosts if h != src]
    tree = optimal_symmetric_tree(ls, src, dests)
    t = Transfer(net, "t", src, msg, [tree])
    t.start()
    net.sim.run(until=5.0)
    return t


class TestLossInjection:
    def test_zero_loss_by_default(self):
        ls, net = lossy_net(0.0)
        t = run_broadcast(ls, net)
        assert t.complete
        assert net.lost_segments == 0
        assert t.retransmissions == 0

    @pytest.mark.parametrize("loss", [0.01, 0.05, 0.15])
    def test_completes_despite_loss(self, loss):
        ls, net = lossy_net(loss)
        t = run_broadcast(ls, net)
        assert t.complete
        assert net.lost_segments > 0
        assert t.retransmissions > 0

    def test_loss_increases_cct(self):
        ls0, net0 = lossy_net(0.0)
        clean = run_broadcast(ls0, net0).complete_at
        ls1, net1 = lossy_net(0.10)
        lossy = run_broadcast(ls1, net1).complete_at
        assert lossy > clean

    def test_no_duplicate_counting(self):
        """Receivers dedupe repair copies racing the originals."""
        ls, net = lossy_net(0.10)
        t = run_broadcast(ls, net)
        for host, count in t._delivered_count.items():
            assert count == t.num_segments

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            SimConfig(loss_probability=1.0)
        with pytest.raises(ValueError):
            SimConfig(loss_probability=-0.1)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            SimConfig(retransmit_timeout_s=0)


class TestRepairPath:
    def test_repairs_are_unicast(self):
        """Repair traffic must not re-multicast: after a loss-free start,
        only the laggard's downlink sees extra bytes."""
        ls, net = lossy_net(0.08)
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h != src]
        tree = optimal_symmetric_tree(ls, src, dests)
        t = Transfer(net, "t", src, MSG, [tree])
        t.start()
        net.sim.run(until=5.0)
        assert t.complete
        # Every receiver got exactly num_segments distinct segments.
        assert all(len(s) == t.num_segments for s in t._received.values())

    def test_peel_multitree_with_loss(self):
        ls = LeafSpine(4, 8, 2)
        cfg = SimConfig(segment_bytes=65536, loss_probability=0.05)
        net = Network(ls, cfg)
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h != src]
        plan = Peel(ls).plan(src, dests)
        t = Transfer(net, "t", src, MSG, plan.static_trees, receivers=set(dests))
        t.start()
        net.sim.run(until=5.0)
        assert t.complete

    def test_relay_chain_with_loss(self):
        """Ring-style relays recover too: each hop repairs independently."""
        ls, net = lossy_net(0.05)
        a, b, c = "host:l0:0", "host:l1:0", "host:l2:0"
        t1 = Transfer(net, "t1", a, MSG, [optimal_symmetric_tree(ls, a, [b])])
        t2 = Transfer(net, "t2", b, MSG, [optimal_symmetric_tree(ls, b, [c])],
                      is_relay=True)
        t1.add_relay_child(b, t2)
        t1.start()
        t2.start()
        net.sim.run(until=5.0)
        assert t1.complete and t2.complete


def tracked_net(**kwargs):
    """A loss-free fabric with segment tracking on (fault-tolerant mode),
    so transient drops exercise the repair machinery deterministically."""
    ls = LeafSpine(2, 4, 4)
    cfg = SimConfig(segment_bytes=65536, **kwargs)
    net = Network(ls, cfg)
    net.fault_tolerant = True
    return ls, net


def single_receiver(ls, net, msg=MSG):
    src, dst = ls.hosts[0], ls.hosts[-1]
    tree = optimal_symmetric_tree(ls, src, [dst])
    t = Transfer(net, "t", src, msg, [tree])
    return t, src, dst, tree


class TestDeterministicRetransmit:
    def test_armed_drop_triggers_exactly_one_repair_round(self):
        ls, net = tracked_net()
        t, src, dst, tree = single_receiver(ls, net)
        path = tree.path_from_root(dst)
        net.drop_next_segments(path[-2], dst, count=1)
        t.start()
        net.sim.run(until=5.0)
        assert t.complete
        assert net.failure_drops == 1
        assert t.retransmissions == 1
        # The receiver deduped: exactly num_segments distinct arrivals.
        assert t._delivered_count[dst] == t.num_segments

    def test_drop_next_validation(self):
        ls, net = tracked_net()
        with pytest.raises(ValueError):
            net.drop_next_segments(ls.hosts[0], ls.hosts[1])  # not a link
        host = ls.hosts[0]
        tor = ls.tor_of(host)
        with pytest.raises(ValueError):
            net.drop_next_segments(host, tor, count=0)

    def test_repair_skipped_while_route_down(self):
        """A laggard behind a failed link must not draw an unbounded
        retransmission stream into the blackhole."""
        ls, net = tracked_net(retransmit_timeout_s=100e-6)
        t, src, dst, tree = single_receiver(ls, net)
        path = tree.path_from_root(dst)
        last_hop = (path[-2], dst)
        net.drop_next_segments(*last_hop, count=1)
        t.start()

        def sever():
            if not t.complete:
                net.set_link_down(*last_hop)

        net.sim.schedule(30e-6, sever)
        net.sim.run(until=10e-3)
        assert not t.complete
        resent_while_down = t.retransmissions
        # The repair loop parked itself instead of spinning every timeout.
        assert resent_while_down <= 2
        assert net.sim.pending == 0

        net.set_link_up(*last_hop)
        t.nudge()
        net.sim.run(until=20e-3)
        assert t.complete
        assert t.retransmissions > 0

    def test_repair_route_is_pruned_unicast_path(self):
        ls, net = tracked_net()
        t, src, dst, tree = single_receiver(ls, net)
        route = t._repair_route(dst)
        path = tree.path_from_root(dst)
        assert route.root == src
        assert sorted(route.edges) == sorted(zip(path, path[1:]))
        assert t._repair_route("host:does-not-exist") is None

    def test_repair_route_prefers_refined_tree(self):
        ls = LeafSpine(2, 4, 4)
        cfg = SimConfig(segment_bytes=65536)
        net = Network(ls, cfg)
        net.fault_tolerant = True
        src = ls.hosts[0]
        dests = [h for h in ls.hosts if h != src]
        static = optimal_symmetric_tree(ls, src, dests)
        refined = optimal_symmetric_tree(ls, src, dests)
        t = Transfer(net, "t", src, MSG, [static], refined_tree=refined,
                     refinement_ready_at=0.0)
        route = t._repair_route(dests[0])
        refined_path = refined.path_from_root(dests[0])
        assert sorted(route.edges) == sorted(
            zip(refined_path, refined_path[1:])
        )

    def test_nudge_is_noop_without_tracking(self):
        ls = LeafSpine(2, 4, 4)
        net = Network(ls, SimConfig(segment_bytes=65536))
        t, *_ = single_receiver(ls, net)
        t.start()
        net.sim.run(until=5.0)
        assert t.complete
        t.nudge()  # complete + untracked: must not reschedule anything
        assert net.sim.pending == 0
