"""InvariantChecker: ledger accounting, violation detection, watchdog."""

import pytest

from repro.collectives import CollectiveEnv, Gpu, Group, scheme_by_name
from repro.sim import InvariantChecker, InvariantViolation, SimConfig
from repro.sim.packet import Segment
from repro.topology import LeafSpine

MB = 2**20


def small_group(topo, n):
    members = tuple(Gpu(h, 0) for h in topo.hosts[:n])
    return Group(source=members[0], members=members)


def run_broadcast(scheme="peel", message=MB, raise_immediately=True, n=8):
    topo = LeafSpine(2, 4, 2)
    env = CollectiveEnv(
        topo,
        SimConfig(segment_bytes=64 * 1024),
        check_invariants=True,
        raise_on_violation=raise_immediately,
    )
    handle = scheme_by_name(scheme).launch(env, small_group(topo, n), message, 0.0)
    env.run()
    return env, handle


class TestCleanRuns:
    def test_peel_run_is_clean(self):
        env, handle = run_broadcast("peel")
        assert handle.complete
        assert env.finalize_checks() == []
        assert env.invariants.ok

    @pytest.mark.parametrize("scheme", ["optimal", "ring", "tree", "orca"])
    def test_all_schemes_clean(self, scheme):
        env, handle = run_broadcast(scheme)
        assert handle.complete
        assert env.finalize_checks() == []

    def test_ledger_balances_after_drain(self):
        env, _ = run_broadcast("peel")
        inv = env.invariants
        assert inv.in_flight_bytes == 0
        assert inv.in_flight_copies == 0
        assert inv.created_bytes == (
            inv.delivered_bytes + inv.wasted_bytes + inv.lost_bytes
        )
        assert inv.created_bytes >= MB  # at least the message itself
        assert inv.checks > 0

    def test_every_receiver_accepted_every_segment(self):
        env, _ = run_broadcast("peel")
        transfer = env.network.transfers[0]
        for host in transfer.receivers:
            accepted = env.invariants._accepted[(transfer, host)]
            assert accepted == set(range(transfer.num_segments))

    def test_summary_mentions_ok(self):
        env, _ = run_broadcast("peel")
        env.finalize_checks()
        assert "invariants ok" in env.invariants.summary()


class TestCorruptedRuns:
    def test_double_delivery_is_caught(self):
        """The acceptance check: seed a duplicate segment into a finished
        broadcast and the checker must flag the double count."""
        env, handle = run_broadcast("peel")
        assert handle.complete
        transfer = env.network.transfers[0]
        route = transfer.static_trees[0]
        dup = Segment(transfer, 0, transfer.segment_sizes[0], route)
        env.network.host(transfer.src_host).send(dup)
        with pytest.raises(InvariantViolation, match="exactly-once"):
            env.run()

    def test_double_delivery_collected_when_not_raising(self):
        env, handle = run_broadcast("peel", raise_immediately=False)
        transfer = env.network.transfers[0]
        route = transfer.static_trees[0]
        dup = Segment(transfer, 0, transfer.segment_sizes[0], route)
        env.network.host(transfer.src_host).send(dup)
        env.run()
        kinds = {v.invariant for v in env.invariants.violations}
        assert "exactly-once" in kinds
        assert not env.invariants.ok
        assert "violation" in env.invariants.summary()

    def test_out_of_range_segment_is_caught(self):
        env, _ = run_broadcast("peel", raise_immediately=False)
        transfer = env.network.transfers[0]
        route = transfer.static_trees[0]
        bogus = Segment(transfer, transfer.num_segments + 3, 1500, route)
        env.network.host(transfer.src_host).send(bogus)
        env.run()
        kinds = {v.invariant for v in env.invariants.violations}
        assert "segment-shape" in kinds

    def test_corrupted_ledger_fails_finalize(self):
        env, _ = run_broadcast("peel", raise_immediately=False)
        env.invariants.in_flight_bytes += 512  # simulate a leaked copy
        violations = env.finalize_checks()
        assert any(v.invariant == "byte-conservation" for v in violations)

    def test_negative_buffer_is_caught_by_scan(self):
        env, _ = run_broadcast("peel", raise_immediately=False)
        switch = next(
            node
            for name, node in env.network.nodes.items()
            if name.startswith("leaf")
        )
        switch.buffered_bytes = -1
        env.invariants.scan()
        kinds = {v.invariant for v in env.invariants.violations}
        assert "occupancy" in kinds


class TestWatchdog:
    def test_wedged_port_trips_deadlock(self):
        """A permanently paused uplink stops all progress; the watchdog
        must flag the stall instead of letting the run hang silently."""
        topo = LeafSpine(2, 4, 2)
        env = CollectiveEnv(
            topo,
            SimConfig(segment_bytes=64 * 1024),
            check_invariants=True,
        )
        group = small_group(topo, 8)
        source = group.source.host
        uplink = env.network.ports[source, topo.tor_of(source)]
        uplink.paused = True  # nobody will ever resume it
        scheme_by_name("peel").launch(env, group, 256 * 1024, 0.0)
        with pytest.raises(InvariantViolation, match="deadlock"):
            env.run()

    def test_watchdog_rearms_across_idle_gaps(self):
        """Two broadcasts separated by dead air: the watchdog disarms when
        the fabric drains and must not misfire across the gap."""
        topo = LeafSpine(2, 4, 2)
        env = CollectiveEnv(
            topo, SimConfig(segment_bytes=64 * 1024), check_invariants=True
        )
        scheme = scheme_by_name("peel")
        h1 = scheme.launch(env, small_group(topo, 8), MB, 0.0)
        h2 = scheme.launch(env, small_group(topo, 8), MB, 0.5)  # long gap
        env.run()
        assert h1.complete and h2.complete
        assert env.finalize_checks() == []

    def test_rejects_bad_interval(self):
        topo = LeafSpine(2, 2, 1)
        env = CollectiveEnv(topo)
        with pytest.raises(ValueError):
            InvariantChecker(env.network, watchdog_interval_s=0.0)


class TestSkidBound:
    def test_override_wins(self):
        topo = LeafSpine(2, 2, 1)
        env = CollectiveEnv(topo)
        checker = InvariantChecker(env.network, pfc_skid_bytes=12345.0)
        assert checker.pfc_skid_bytes == 12345.0

    def test_default_scales_with_fanout(self):
        topo = LeafSpine(2, 4, 2)
        env = CollectiveEnv(topo)
        checker = InvariantChecker(env.network)
        cfg = env.network.config
        assert checker.pfc_skid_bytes >= 2 * cfg.segment_bytes
