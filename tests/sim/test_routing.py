"""ECMP unicast routing."""

import random

import pytest

from repro.sim import UnicastRouter
from repro.topology import FatTree, LeafSpine


class TestPaths:
    def test_trivial_path(self):
        ls = LeafSpine(2, 2, 2)
        router = UnicastRouter(ls)
        assert router.path("host:l0:0", "host:l0:0") == ["host:l0:0"]

    def test_same_rack_path(self):
        ls = LeafSpine(2, 2, 2)
        router = UnicastRouter(ls)
        assert router.path("host:l0:0", "host:l0:1") == [
            "host:l0:0",
            "leaf:0",
            "host:l0:1",
        ]

    def test_cross_rack_is_shortest(self):
        ls = LeafSpine(4, 4, 2)
        router = UnicastRouter(ls)
        path = router.path("host:l0:0", "host:l3:1")
        assert len(path) == 5
        assert path[2].startswith("spine")

    def test_paths_are_physical(self):
        ft = FatTree(4)
        router = UnicastRouter(ft)
        path = router.path("host:p0:t0:0", "host:p3:t1:1")
        for u, v in zip(path, path[1:]):
            assert ft.graph.has_edge(u, v)

    def test_ecmp_spreads_over_spines(self):
        ls = LeafSpine(8, 2, 1)
        router = UnicastRouter(ls, random.Random(0))
        spines = {
            router.path("host:l0:0", "host:l1:0")[2] for _ in range(100)
        }
        assert len(spines) >= 4  # many of the 8 spines get used

    def test_respects_failures(self):
        ls = LeafSpine(2, 2, 1)
        ls.fail_link("spine:0", "leaf:1")
        router = UnicastRouter(ls)
        for _ in range(20):
            path = router.path("host:l0:0", "host:l1:0")
            assert "spine:1" in path

    def test_unreachable_raises(self):
        ls = LeafSpine(1, 2, 1)
        ls.fail_link("spine:0", "leaf:1")
        router = UnicastRouter(ls)
        router.invalidate()
        with pytest.raises(ValueError):
            router.path("host:l0:0", "host:l1:0")

    def test_invalidate_after_topology_change(self):
        ls = LeafSpine(2, 2, 1)
        router = UnicastRouter(ls, random.Random(1))
        router.path("host:l0:0", "host:l1:0")  # warm the cache
        ls.fail_link("spine:0", "leaf:1")
        router.invalidate()
        for _ in range(10):
            assert "spine:1" in router.path("host:l0:0", "host:l1:0")


class TestPathTree:
    def test_path_tree_is_chain(self):
        ls = LeafSpine(2, 2, 2)
        router = UnicastRouter(ls)
        tree = router.path_tree("host:l0:0", "host:l1:1")
        assert tree.cost == 4
        assert tree.leaves == {"host:l1:1"}
        assert tree.root == "host:l0:0"
