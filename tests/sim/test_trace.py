"""Golden traces: deterministic replay digests and trace diffing."""

import pytest

from repro.collectives import Gpu, Group
from repro.api import ScenarioSpec, run
from repro.sim import SimConfig, TraceRecorder, diff_traces
from repro.sim.trace import TraceRecorder as _TraceRecorder
from repro.topology import LeafSpine
from repro.workloads import CollectiveJob

MB = 2**20


def make_job(topo, n=8, message=MB, arrival=0.0):
    members = tuple(Gpu(h, 0) for h in topo.hosts[:n])
    return CollectiveJob(arrival, Group(members[0], members), message)


def run_once(seed=0, scheme="peel"):
    topo = LeafSpine(2, 4, 2)
    cfg = SimConfig(segment_bytes=64 * 1024, seed=seed)
    return run(ScenarioSpec(topology=topo, scheme=scheme,
                        jobs=(make_job(topo),), config=cfg,
                        record_trace=True))


class TestDeterministicReplay:
    def test_same_scenario_same_digest(self):
        a = run_once(seed=0)
        b = run_once(seed=0)
        assert a.trace_digest is not None
        assert a.trace_digest == b.trace_digest
        assert a.ccts == b.ccts

    def test_different_seed_different_digest(self):
        """Seeds drive placement/arrivals; different seeds, different trace
        (a fixed single-job scenario is seed-independent by design)."""
        from repro.workloads import generate_jobs

        def run_workload(seed):
            topo = LeafSpine(2, 4, 2)
            jobs = generate_jobs(
                topo, 2, 4, MB, gpus_per_host=1, seed=seed
            )
            cfg = SimConfig(segment_bytes=64 * 1024, seed=seed)
            return run(ScenarioSpec(topology=topo, scheme="peel",
                                jobs=tuple(jobs), config=cfg,
                                record_trace=True))

        assert run_workload(0).trace_digest != run_workload(1).trace_digest

    def test_different_scheme_different_digest(self):
        assert (
            run_once(scheme="peel").trace_digest
            != run_once(scheme="optimal").trace_digest
        )

    def test_no_trace_by_default(self):
        topo = LeafSpine(2, 4, 2)
        result = run(ScenarioSpec(topology=topo, scheme="peel",
                                  jobs=(make_job(topo),)))
        assert result.trace_digest is None


class TestRecorderApi:
    def run_env(self, keep_events=False):
        from repro.collectives import CollectiveEnv, scheme_by_name

        topo = LeafSpine(2, 4, 2)
        env = CollectiveEnv(topo, SimConfig(segment_bytes=64 * 1024))
        recorder = TraceRecorder(env.network, keep_events=keep_events)
        members = tuple(Gpu(h, 0) for h in topo.hosts[:8])
        scheme_by_name("peel").launch(env, Group(members[0], members), MB, 0.0)
        env.run()
        return recorder

    def test_save_and_match_roundtrip(self, tmp_path):
        golden = tmp_path / "golden.json"
        a = self.run_env()
        a.save(golden)
        b = self.run_env()
        assert b.matches(golden)
        assert a.num_events == b.num_events

    def test_match_fails_on_changed_run(self, tmp_path):
        golden = tmp_path / "golden.json"
        self.run_env().save(golden)
        topo = LeafSpine(2, 4, 2)
        from repro.collectives import CollectiveEnv, scheme_by_name

        env = CollectiveEnv(topo, SimConfig(segment_bytes=64 * 1024, seed=9))
        recorder = TraceRecorder(env.network)
        members = tuple(Gpu(h, 0) for h in topo.hosts[:6])  # different group
        scheme_by_name("peel").launch(env, Group(members[0], members), MB, 0.0)
        env.run()
        assert not recorder.matches(golden)

    def test_diff_identical_runs_is_empty(self):
        a = self.run_env(keep_events=True)
        b = self.run_env(keep_events=True)
        assert diff_traces(a, b) == []
        assert a.events  # something was recorded

    def test_diff_requires_kept_events(self):
        a = self.run_env(keep_events=False)
        b = self.run_env(keep_events=False)
        with pytest.raises(ValueError):
            diff_traces(a, b)

    def test_snapshot_shape(self):
        recorder = self.run_env()
        snap = recorder.snapshot()
        assert snap["digest"] == recorder.digest()
        assert snap["num_events"] == recorder.num_events > 0

    def test_reexported_from_sim(self):
        assert TraceRecorder is _TraceRecorder
