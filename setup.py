"""Legacy setup shim: this environment lacks the `wheel` package, so PEP-660
editable installs cannot build. `pip install -e . --no-use-pep517
--no-build-isolation` (or `python setup.py develop`) works via this file."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["networkx>=3.0", "numpy>=1.24"],
)
